(** The learned cost predictor: one ridge regression per route.

    For each candidate route (II, SA, 2PO, portfolio) the model fits a
    linear predictor of the log10 scaled cost ({!Dataset.target}) over
    [\[1; features; log2 ticks\]].  Ridge regression over this small, fixed
    design is chosen over a contextual bandit deliberately (rationale in
    DESIGN.md): training is a closed-form deterministic solve — fixed
    iteration order, no exploration randomness, no wall clock — so the same
    samples always yield the bit-identical model, which the online-refresh
    determinism guarantees rest on.

    The serialized form is a versioned text file with the checkpoint-v2
    discipline: floats as IEEE-754 bit-pattern hex, every line carrying an
    MD5 checksum of its payload, a declared line count, and a required
    trailing newline — so truncation (even of the final newline alone) and
    any byte mutation are rejected loudly rather than half-loaded. *)

type t

val routes : Ljqo_core.Methods.t list
(** The candidate routes, in fixed training/serialization order:
    [II; SA; Two_phase; Portfolio]. *)

val lambda_default : float
(** 1.0 — the ridge regularizer used when [?lambda] is omitted. *)

val train : ?lambda:float -> Dataset.sample list -> t option
(** Fit one regression per route from the usable samples (unusable ones are
    dropped; samples for routes outside {!routes} are ignored).  Feature
    ranges are recorded over every usable sample for {!in_range}.  [None]
    when no route has a single usable sample.  Deterministic: the result
    depends only on the sample list (order included, though the normal
    equations make it order-insensitive in exact arithmetic). *)

val predict : t -> route:string -> features:float array -> ticks:int -> float option
(** Predicted log10 scaled cost for running [route] at [ticks]; [None] when
    the model has no weights for [route].  Raises [Invalid_argument] if
    [features] has the wrong width. *)

val in_range : t -> float array -> bool
(** Whether a feature vector lies inside the training ranges, with slack
    [max 1.0 (0.25 * span)] per feature — the router's out-of-distribution
    guard. *)

val weighted_routes : t -> string list
(** Route names that have weights, in {!routes} order. *)

val equal : t -> t -> bool
(** Structural equality on the exact float bits — the test suite's
    bit-identical-training check. *)

(** {1 Persistence} *)

val magic : string
(** First line of every model file: ["# ljqo-learn-model v1"]. *)

val save : path:string -> t -> unit

val to_string : t -> string
(** The exact file contents {!save} writes. *)

val load : path:string -> (t, string) result
(** Strict load; [Error] names the offending line.  Guaranteed:
    [load (save m) = Ok m'] with [equal m m'], and any proper prefix or
    single-byte mutation of the file is rejected. *)

val of_string : string -> (t, string) result
