(** Training samples for the learned router.

    A sample is one completed optimizer run: the query's feature vector, the
    concrete route that ran (a {!Ljqo_core.Methods} name), the tick budget it
    was given, and the final cost alongside the query's cost lower bound
    (the pair from which the training target — log10 scaled cost — is
    derived).  Samples come from three places: fresh in-process runs
    ({!collect}), the trajectory table a {!Ljqo_obs.Obs}-instrumented
    harness run leaves behind ({!of_trajectories}), and sample JSONL files
    written by an earlier [ljqo learn train --dump-samples]
    ({!load_jsonl}). *)

type sample = {
  features : float array;  (** {!Features.of_query} of the query *)
  route : string;  (** [Methods.name] of the method that ran *)
  ticks : int;  (** the tick budget the run was given *)
  cost : float;  (** final plan cost *)
  lower_bound : float;  (** the query's cost lower bound under the model *)
}

val target : sample -> float
(** The regression target: [log10 (max 1 (cost / lower_bound))] — the
    log-domain scaled cost, 0 at the lower bound. *)

val usable : sample -> bool
(** Whether the sample can train: positive finite lower bound, finite
    non-negative cost, positive ticks. *)

(** {1 JSONL persistence} *)

val to_json_line : sample -> string
(** One JSON object, no trailing newline.  Floats use round-trippable
    [%.17g]. *)

val of_json_line : string -> (sample, string) result
(** Strict: rejects malformed JSON, missing or mistyped fields, and feature
    vectors whose width differs from {!Features.dim}. *)

val save_jsonl : path:string -> sample list -> unit

val load_jsonl : path:string -> (sample list, string) result
(** Loads every line; the first bad line fails the whole file (with its
    line number), matching the strict checkpoint discipline. *)

val save_trajectories :
  path:string -> (string * (int * float) list) list -> unit
(** Write [Obs.trajectories ()] output as JSONL, one
    [{"label":..,"points":[[ticks,cost],..]}] object per labelled run — the
    format [ljqo-bench --trajectories] emits, and the on-disk producer for
    {!of_trajectories}. *)

val load_trajectories :
  path:string -> ((string * (int * float) list) list, string) result
(** Strict line-by-line inverse of {!save_trajectories}; the first bad line
    fails the whole file with its line number. *)

(** {1 Extraction} *)

val parse_run_label : string -> (int * string * int) option
(** Parse a harness run label ["q<index>.<method>.r<replicate>"] (the format
    [Ljqo_harness.Driver.trajectory_label] produces) into (query index,
    method name, replicate). *)

val of_trajectories :
  model:Ljqo_cost.Cost_model.t ->
  query_of_index:(int -> Ljqo_catalog.Query.t option) ->
  (string * (int * float) list) list ->
  sample list
(** Convert [Obs.trajectories ()] output into samples: each labelled run
    contributes its final (ticks, cost) point; runs whose label does not
    parse, whose query index is unknown, or whose trajectory is empty are
    skipped.  Input order is preserved. *)

val collect :
  ?jobs:int ->
  spec_indices:int list ->
  ns:int list ->
  per_n:int ->
  seed:int ->
  t_factor:float ->
  routes:Ljqo_core.Methods.t list ->
  fractions:float list ->
  model:Ljqo_cost.Cost_model.t ->
  unit ->
  sample list
(** Run the full (benchmark spec x workload entry x route x budget
    fraction) grid in process and return one sample per cell, in grid
    order.  [spec_indices] index {!Ljqo_querygen.Benchmark.by_index};
    each route runs at [max 1 (fraction * t_factor * N^2 * kappa)] ticks.
    Every cell is a pure function of its seeds, and results are folded in
    input order, so the sample list is bit-identical for any [jobs]. *)
