module Methods = Ljqo_core.Methods
module Optimizer = Ljqo_core.Optimizer

let fractions = [ 0.25; 0.5; 1.0 ]

let margin = 0.05

(* Tie-break priority among routes predicted equally good: the portfolio is
   the robust choice, then the standalone methods. *)
let priority = function
  | Methods.Portfolio -> 0
  | Methods.II -> 1
  | Methods.SA -> 2
  | Methods.Two_phase -> 3
  | _ -> 4

let decide model query ~ticks =
  let features = Features.of_query query in
  if not (Model.in_range model features) then None
  else begin
    let candidates =
      List.concat_map
        (fun route ->
          let name = Methods.name route in
          List.filter_map
            (fun f ->
              let t = max 1 (int_of_float (f *. float_of_int ticks)) in
              match Model.predict model ~route:name ~features ~ticks:t with
              | Some pred when Float.is_finite pred -> Some (pred, f, route, t)
              | _ -> None)
            fractions)
        Model.routes
    in
    match candidates with
    | [] -> None
    | _ ->
      let best =
        List.fold_left
          (fun acc (p, _, _, _) -> Float.min acc p)
          infinity candidates
      in
      let survivors =
        List.filter (fun (p, _, _, _) -> p <= best +. margin) candidates
      in
      let better (p1, f1, r1, _) (p2, f2, r2, _) =
        (* larger budget first, then route priority, then prediction *)
        if f1 <> f2 then f1 > f2
        else if priority r1 <> priority r2 then priority r1 < priority r2
        else p1 < p2
      in
      let pick =
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some a -> if better c a then Some c else acc)
          None survivors
      in
      Option.map (fun (_, _, route, t) -> (route, t)) pick
  end

let install = function
  | None -> Optimizer.set_adaptive_router None
  | Some model ->
    Optimizer.set_adaptive_router
      (Some (fun query ~ticks -> decide model query ~ticks))
