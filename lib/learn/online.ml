module Obs = Ljqo_obs.Obs

type t = {
  epoch : int;
  initial : Model.t option;
  mutex : Mutex.t;
  cond : Condition.t;
  slots : (int, Dataset.sample option) Hashtbl.t;
  mutable contiguous : int;  (* slots [0 .. contiguous-1] are all filled *)
  mutable frontier : int;  (* next id handed out by [record] *)
  history : (int, Model.t option) Hashtbl.t;  (* boundary -> its model *)
}

let create ?(epoch = 32) ?initial () =
  if epoch < 1 then invalid_arg "Online.create: epoch must be positive";
  {
    epoch;
    initial;
    mutex = Mutex.create ();
    cond = Condition.create ();
    slots = Hashtbl.create 256;
    contiguous = 0;
    frontier = 0;
    history = Hashtbl.create 8;
  }

let epoch_size t = t.epoch

let initial t = t.initial

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Model for [boundary], training every untrained boundary at or below it
   (in increasing order, so each training set extends the previous).  Must
   hold the lock; slots [0 .. boundary-1] must be filled. *)
let rec model_for_locked t boundary =
  if boundary <= 0 then t.initial
  else
    match Hashtbl.find_opt t.history boundary with
    | Some m -> m
    | None ->
      let prev = model_for_locked t (boundary - t.epoch) in
      let samples =
        List.filter_map
          (fun id -> Hashtbl.find_opt t.slots id |> Option.join)
          (List.init boundary Fun.id)
      in
      let m =
        match Model.train samples with
        | Some m ->
          Obs.bump Obs.Learn_model_refreshes;
          Some m
        | None -> prev
      in
      Hashtbl.replace t.history boundary m;
      m

let latest_boundary t = t.contiguous / t.epoch * t.epoch

let model t =
  locked t (fun () -> model_for_locked t (latest_boundary t))

let fill_locked t id sample =
  if not (Hashtbl.mem t.slots id) then begin
    Hashtbl.replace t.slots id sample;
    if sample <> None then Obs.bump Obs.Learn_samples_recorded;
    while Hashtbl.mem t.slots t.contiguous do
      t.contiguous <- t.contiguous + 1
    done;
    Condition.broadcast t.cond
  end

let record t sample =
  locked t (fun () ->
      let id = t.frontier in
      t.frontier <- t.frontier + 1;
      fill_locked t id sample;
      (* Batch path: crossing an epoch boundary trains it right here, in
         record order, so the refresh schedule is a pure function of the
         request sequence. *)
      if t.contiguous mod t.epoch = 0 && t.contiguous > 0 then
        ignore (model_for_locked t t.contiguous);
      id)

let record_at t ~id sample =
  if id < 0 then invalid_arg "Online.record_at: negative id";
  locked t (fun () ->
      if id >= t.frontier then t.frontier <- id + 1;
      fill_locked t id sample)

let await t ~id =
  if id < 0 then invalid_arg "Online.await: negative id";
  let boundary = id / t.epoch * t.epoch in
  locked t (fun () ->
      while t.contiguous < boundary do
        Condition.wait t.cond t.mutex
      done;
      model_for_locked t boundary)

let recorded t = locked t (fun () -> t.contiguous)
