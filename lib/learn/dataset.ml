module Jsonv = Ljqo_obs.Jsonv
module Methods = Ljqo_core.Methods
module Optimizer = Ljqo_core.Optimizer
module Parallel = Ljqo_stats.Parallel
module Benchmark = Ljqo_querygen.Benchmark
module Workload = Ljqo_querygen.Workload

type sample = {
  features : float array;
  route : string;
  ticks : int;
  cost : float;
  lower_bound : float;
}

let target s = log10 (Float.max 1.0 (s.cost /. s.lower_bound))

let usable s =
  s.lower_bound > 0.0
  && Float.is_finite s.lower_bound
  && Float.is_finite s.cost
  && s.cost >= 0.0
  && s.ticks > 0

let to_json_line s =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"features\":[";
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%.17g" v))
    s.features;
  Buffer.add_string b "],\"route\":";
  Jsonv.write_string b s.route;
  Buffer.add_string b (Printf.sprintf ",\"ticks\":%d" s.ticks);
  Buffer.add_string b (Printf.sprintf ",\"cost\":%.17g" s.cost);
  Buffer.add_string b (Printf.sprintf ",\"lb\":%.17g" s.lower_bound);
  Buffer.add_char b '}';
  Buffer.contents b

let of_json_line line =
  let ( let* ) = Result.bind in
  let* j = Jsonv.parse line in
  let field name =
    match Jsonv.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let num name =
    let* v = field name in
    match v with
    | Jsonv.Num f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "field %S is not a finite number" name)
  in
  let* features = field "features" in
  let* features =
    match features with
    | Jsonv.List vs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Jsonv.Num f :: tl when Float.is_finite f -> go (f :: acc) tl
        | _ -> Error "field \"features\" has a non-numeric entry"
      in
      let* fs = go [] vs in
      let arr = Array.of_list fs in
      if Array.length arr <> Features.dim then
        Error
          (Printf.sprintf "feature width %d, expected %d" (Array.length arr)
             Features.dim)
      else Ok arr
    | _ -> Error "field \"features\" is not a list"
  in
  let* route = field "route" in
  let* route =
    match route with
    | Jsonv.Str s when Methods.of_name s <> None -> Ok s
    | Jsonv.Str s -> Error (Printf.sprintf "unknown route %S" s)
    | _ -> Error "field \"route\" is not a string"
  in
  let* ticks = num "ticks" in
  let* ticks =
    if Float.is_integer ticks && ticks >= 1.0 && ticks <= 1e15 then
      Ok (int_of_float ticks)
    else Error "field \"ticks\" is not a positive integer"
  in
  let* cost = num "cost" in
  let* lower_bound = num "lb" in
  Ok { features; route; ticks; cost; lower_bound }

let save_jsonl ~path samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun s ->
          output_string oc (to_json_line s);
          output_char oc '\n')
        samples)

let load_jsonl ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
            match of_json_line line with
            | Ok s -> go (lineno + 1) (s :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
        in
        go 1 [])

(* Raw trajectory JSONL — the bench harness's --trajectories output, one
   {"label":..,"points":[[ticks,cost],..]} object per labelled run.  This is
   the serialized form of [Obs.trajectories ()], i.e. the default producer
   for [of_trajectories]: save in one process, load and convert in
   another. *)

let trajectory_to_json_line (label, points) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"label\":";
  Jsonv.write_string b label;
  Buffer.add_string b ",\"points\":[";
  List.iteri
    (fun i (t, c) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%.17g]" t c))
    points;
  Buffer.add_string b "]}";
  Buffer.contents b

let trajectory_of_json_line line =
  let ( let* ) = Result.bind in
  let* j = Jsonv.parse line in
  let* label =
    match Jsonv.member "label" j with
    | Some (Jsonv.Str s) -> Ok s
    | _ -> Error "missing or non-string field \"label\""
  in
  let* points =
    match Jsonv.member "points" j with
    | Some (Jsonv.List vs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Jsonv.List [ Jsonv.Num t; Jsonv.Num c ] :: tl
          when Float.is_integer t && t >= 0.0 && t <= 1e15 && Float.is_finite c
          ->
          go ((int_of_float t, c) :: acc) tl
        | _ -> Error "field \"points\" entries must be [ticks, cost] pairs"
      in
      go [] vs
    | _ -> Error "missing or non-list field \"points\""
  in
  Ok (label, points)

let save_trajectories ~path trajs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun t ->
          output_string oc (trajectory_to_json_line t);
          output_char oc '\n')
        trajs)

let load_trajectories ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
            match trajectory_of_json_line line with
            | Ok t -> go (lineno + 1) (t :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
        in
        go 1 [])

(* "q<index>.<method>.r<replicate>" — Driver.run_label's format.  Strict:
   every segment must parse and nothing may trail. *)
let parse_run_label label =
  match String.split_on_char '.' label with
  | [ q; m; r ]
    when String.length q > 1
         && q.[0] = 'q'
         && String.length r > 1
         && r.[0] = 'r' ->
    let int_of s =
      match int_of_string_opt s with Some v when v >= 0 -> Some v | _ -> None
    in
    let idx = int_of (String.sub q 1 (String.length q - 1)) in
    let rep = int_of (String.sub r 1 (String.length r - 1)) in
    (match (idx, Methods.of_name m, rep) with
    | Some i, Some _, Some rep -> Some (i, m, rep)
    | _ -> None)
  | _ -> None

let of_trajectories ~model ~query_of_index trajs =
  List.filter_map
    (fun (label, points) ->
      match (parse_run_label label, List.rev points) with
      | Some (idx, route, _), (ticks, cost) :: _ -> (
        match query_of_index idx with
        | Some q ->
          Some
            {
              features = Features.of_query q;
              route;
              ticks;
              cost;
              lower_bound = Ljqo_cost.Plan_cost.lower_bound model q;
            }
        | None -> None)
      | _ -> None)
    trajs

let collect ?jobs ~spec_indices ~ns ~per_n ~seed ~t_factor ~routes ~fractions
    ~model () =
  let cells =
    List.concat_map
      (fun spec_idx ->
        let spec = Benchmark.by_index spec_idx in
        let wl = Workload.make ~ns ~per_n ~seed:(seed + (spec_idx * 101)) spec in
        Array.to_list wl.Workload.entries
        |> List.concat_map (fun entry ->
               List.concat_map
                 (fun (ri, route) ->
                   List.mapi
                     (fun fi fraction -> (spec_idx, entry, ri, route, fi, fraction))
                     fractions)
                 (List.mapi (fun ri route -> (ri, route)) routes)))
      spec_indices
  in
  let run (spec_idx, entry, ri, route, fi, fraction) =
    let q = entry.Workload.query in
    let base =
      Optimizer.time_limit_ticks ~t_factor ~query:q ()
    in
    let ticks = max 1 (int_of_float (fraction *. float_of_int base)) in
    let cell_seed =
      seed + (spec_idx * 16381) + (entry.Workload.index * 1009) + (ri * 277)
      + (fi * 89)
    in
    let r = Optimizer.optimize ~method_:route ~model ~ticks ~seed:cell_seed q in
    {
      features = Features.of_query q;
      route = Methods.name route;
      ticks;
      cost = r.Optimizer.cost;
      lower_bound = Ljqo_cost.Plan_cost.lower_bound model q;
    }
  in
  Array.to_list (Parallel.map_array ?jobs run (Array.of_list cells))
