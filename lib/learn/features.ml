module Query = Ljqo_catalog.Query
module Join_graph = Ljqo_catalog.Join_graph
module Graph_metrics = Ljqo_catalog.Graph_metrics

let coarse_bits = 4

let names =
  Array.append
    [|
      "n_relations";
      "log2_n";
      "n_edges";
      "edge_density";
      "min_degree";
      "max_degree";
      "mean_degree";
      "n_components";
      "diameter";
      "cyclomatic";
      "star_score";
      "chain_score";
      "card_log_min";
      "card_log_max";
      "card_log_mean";
      "card_log_std";
      "distinct_log_mean";
      "sel_log_min";
      "sel_log_mean";
      "total_tuples_log";
    |]
    (Array.init coarse_bits (Printf.sprintf "coarse_bit%d"))

let dim = Array.length names

(* log10 clamped away from zero so the vector stays finite whatever the
   catalog holds. *)
let log10p v = log10 (Float.max v 1e-300)

let coarse_hash q =
  let g = Query.graph q in
  let n = Query.n_relations q in
  let m = Graph_metrics.compute g in
  let card_buckets =
    List.sort compare
      (List.init n (fun i ->
           int_of_float (Float.round (log10p (Query.cardinality q i)))))
  in
  Hashtbl.hash (n, Join_graph.n_edges g, m.Graph_metrics.degree_histogram, card_buckets)
  land max_int

let of_query q =
  let n = Query.n_relations q in
  if n = 0 then invalid_arg "Features.of_query: empty query";
  let g = Query.graph q in
  let m = Graph_metrics.compute g in
  let fn = float_of_int n in
  let card_logs = Array.init n (fun i -> log10p (Query.cardinality q i)) in
  let dist_logs = Array.init n (fun i -> log10p (Query.distinct_values q i)) in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let amin a = Array.fold_left Float.min a.(0) a in
  let amax a = Array.fold_left Float.max a.(0) a in
  let std a =
    let mu = mean a in
    sqrt (mean (Array.map (fun v -> (v -. mu) ** 2.0) a))
  in
  let sel_logs =
    match Join_graph.edges g with
    | [] -> [| 0.0 |]
    | es ->
      Array.of_list
        (List.map (fun e -> log10p e.Join_graph.selectivity) es)
  in
  let h = coarse_hash q in
  let base =
    [|
      fn;
      log fn /. log 2.0;
      float_of_int (Join_graph.n_edges g);
      (if n < 2 then 0.0
       else 2.0 *. float_of_int (Join_graph.n_edges g) /. (fn *. (fn -. 1.0)));
      float_of_int m.Graph_metrics.min_degree;
      float_of_int m.Graph_metrics.max_degree;
      m.Graph_metrics.mean_degree;
      float_of_int m.Graph_metrics.n_components;
      (* diameter is -1 on a disconnected graph; n is one past any real
         diameter, so the sentinel stays ordered and finite. *)
      (if m.Graph_metrics.diameter < 0 then fn
       else float_of_int m.Graph_metrics.diameter);
      float_of_int m.Graph_metrics.cyclomatic;
      m.Graph_metrics.star_score;
      m.Graph_metrics.chain_score;
      amin card_logs;
      amax card_logs;
      mean card_logs;
      std card_logs;
      mean dist_logs;
      amin sel_logs;
      mean sel_logs;
      log10p (Query.total_base_tuples q);
    |]
  in
  Array.append base
    (Array.init coarse_bits (fun b -> float_of_int ((h lsr b) land 1)))
