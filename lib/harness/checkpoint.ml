(* Crash-safe persistence of completed per-query experiment results.

   One experiment writes one line-oriented text file: a header binding the
   file to a configuration fingerprint, then one record per completed query.
   Records are appended and flushed as each query finishes, so the file is
   valid after a kill at any instant (a torn final line is ignored on load).
   Floats are stored as IEEE-754 bit patterns in hex, so a resumed
   experiment reproduces the uninterrupted outcome bit for bit.

   Corruption discipline: a resumed record is trusted bit for bit, so
   loading must never accept a line the writer could not have produced.
   Tokens are parsed canonically (plain decimal / bare lowercase hex — no
   [int_of_string] leniency like underscores or 0x/0o/0b prefixes, which
   would let a garbled line parse into a plausible bogus record), and every
   record line carries an MD5 checksum of its payload, so even a mutation
   that maps one valid digit to another is rejected rather than silently
   poisoning the resume. *)

let log_src = Logs.Src.create "ljqo.checkpoint" ~doc:"experiment checkpointing"

module Log = (val Logs.src_log log_src)

type request = { dir : string; resume : bool }

type record = { timeouts : int; out : float array array }

type t = {
  path : string;
  mutable oc : out_channel option;
  mutex : Mutex.t;
  loaded : (int, record) Hashtbl.t;
}

let header_magic = "# ljqo-checkpoint v2"

let float_to_hex v = Printf.sprintf "%Lx" (Int64.bits_of_float v)

(* Canonical nonnegative decimal, exactly as [%d] prints it: digits only, no
   sign, no leading zero (except "0" itself), no [int_of_string] extras
   (underscores, 0x/0o/0b prefixes). *)
let canonical_nat s =
  let n = String.length s in
  if n = 0 || n > 18 then None
  else if n > 1 && s.[0] = '0' then None
  else begin
    let ok = ref true in
    String.iter (fun c -> if c < '0' || c > '9' then ok := false) s;
    if !ok then int_of_string_opt s else None
  end

(* Canonical bare hex, exactly as [%Lx] prints it: 1-16 lowercase hex
   digits, no prefix, no leading zero (except "0" itself). *)
let float_of_hex s =
  let n = String.length s in
  if n = 0 || n > 16 then None
  else if n > 1 && s.[0] = '0' then None
  else begin
    let ok = ref true in
    String.iter
      (fun c -> if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then ok := false)
      s;
    if !ok then
      match Int64.of_string_opt ("0x" ^ s) with
      | Some bits -> Some (Int64.float_of_bits bits)
      | None -> None
    else None
  end

let checksum payload = Digest.to_hex (Digest.string payload)

(* "R <index> <timeouts> <rows> <cols> <hex>* <md5>" — returns None on any
   malformation: torn writes show up as short lines or a checksum mismatch,
   and byte-level corruption of an otherwise well-formed line is caught by
   the checksum even when every token still parses. *)
let parse_record line =
  let line = String.trim line in
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let digest = String.sub line (i + 1) (String.length line - i - 1) in
    if String.length digest <> 32 || not (String.equal digest (checksum payload))
    then None
    else (
      match String.split_on_char ' ' payload with
      | "R" :: index :: timeouts :: rows :: cols :: cells -> (
        match
          ( canonical_nat index,
            canonical_nat timeouts,
            canonical_nat rows,
            canonical_nat cols )
        with
        | Some index, Some timeouts, Some rows, Some cols
          when rows >= 0 && cols >= 0 && List.length cells = rows * cols -> (
          match
            List.map (fun c -> Option.to_list (float_of_hex c)) cells
            |> List.concat
          with
          | floats when List.length floats = rows * cols ->
            let flat = Array.of_list floats in
            let out = Array.init rows (fun r -> Array.sub flat (r * cols) cols) in
            Some (index, { timeouts; out })
          | _ -> None)
        | _ -> None)
      | _ -> None)

let load_into table ~path ~fingerprint =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file -> false
      | header ->
        if header <> header_magic ^ " " ^ fingerprint then false
        else begin
          let rec go () =
            match input_line ic with
            | exception End_of_file -> ()
            | line ->
              (match parse_record line with
              | Some (index, r) ->
                Ljqo_obs.Obs.bump Ljqo_obs.Obs.Ckpt_records_loaded;
                Hashtbl.replace table index r
              | None ->
                if String.trim line <> "" then begin
                  Ljqo_obs.Obs.bump Ljqo_obs.Obs.Ckpt_lines_rejected;
                  Log.warn (fun m ->
                      m "%s: ignoring malformed checkpoint line %S" path line)
                end);
              go ()
          in
          go ();
          true
        end)

(* Stores open for writing, flushed by the SIGINT handler / at_exit hook. *)
let open_stores : t list ref = ref []

let flush_all () =
  List.iter
    (fun t ->
      Mutex.lock t.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.mutex)
        (fun () -> try Option.iter flush t.oc with Sys_error _ -> ()))
    !open_stores

let handlers_installed = ref false

let install_flush_handlers () =
  if not !handlers_installed then begin
    handlers_installed := true;
    at_exit flush_all;
    match Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> flush_all (); exit 130)) with
    | _ -> ()
    | exception Sys_error _ | exception Invalid_argument _ -> ()
  end

let record_line index { timeouts; out } =
  let buf = Buffer.create 256 in
  let rows = Array.length out in
  let cols = if rows = 0 then 0 else Array.length out.(0) in
  Buffer.add_string buf (Printf.sprintf "R %d %d %d %d" index timeouts rows cols);
  Array.iter
    (Array.iter (fun v ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf (float_to_hex v)))
    out;
  let payload = Buffer.contents buf in
  payload ^ " " ^ checksum payload ^ "\n"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let open_store ~path ~fingerprint ~resume () =
  mkdir_p (Filename.dirname path);
  let loaded = Hashtbl.create 64 in
  let usable =
    resume && Sys.file_exists path && load_into loaded ~path ~fingerprint
  in
  if resume && Sys.file_exists path && not usable then
    Log.warn (fun m ->
        m "%s: checkpoint does not match this experiment's configuration; starting fresh"
          path);
  (* Always rewrite rather than append: a kill can leave a torn final line
     with no trailing newline, and appending after it would weld the next
     record onto the fragment, losing both. *)
  let oc = open_out path in
  output_string oc (header_magic ^ " " ^ fingerprint ^ "\n");
  if usable then begin
    let indices = Hashtbl.fold (fun k _ acc -> k :: acc) loaded [] in
    List.iter
      (fun i -> output_string oc (record_line i (Hashtbl.find loaded i)))
      (List.sort compare indices)
  end;
  flush oc;
  if usable then
    Log.info (fun m ->
        m "%s: resuming, %d completed queries loaded" path (Hashtbl.length loaded));
  let t = { path; oc = Some oc; mutex = Mutex.create (); loaded } in
  install_flush_handlers ();
  open_stores := t :: !open_stores;
  t

let path t = t.path

let completed t index = Hashtbl.find_opt t.loaded index

let n_completed t = Hashtbl.length t.loaded

let record t ~index r =
  let line = record_line index r in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        output_string oc line;
        flush oc)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Option.iter close_out_noerr t.oc;
      t.oc <- None);
  open_stores := List.filter (fun s -> s != t) !open_stores
