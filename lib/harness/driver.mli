(** Shared machinery for the paper's experiments.

    One experiment runs a set of methods over a workload at a ladder of time
    limits (the paper's [t * N^2] factors).  Following Section 6.1:

    - each method runs [replicates] times per query with different seeds and
      the replicate costs are averaged;
    - every run is given the [9 N^2] budget with checkpoints at each
      requested factor, so one run yields the whole quality-vs-time curve;
    - per query, costs are scaled by the best cost any compared method
      achieved at [9 N^2];
    - scaled costs at or above 10 are outlying values, coerced to 10;
    - the per-datapoint statistic is the mean of the coerced scaled costs
      over the workload.

    Resilience: every per-query unit of work runs under {!Guard.run}, so a
    crash or wall-clock timeout in one query is recorded (and surfaced in
    the outcome and its tables) instead of destroying the experiment.  With
    [~checkpoint], completed per-query results are persisted as they finish
    and an interrupted experiment can be resumed bit-identically. *)

type scale = {
  per_n : int;  (** queries per value of N *)
  replicates : int;
}

val default_scale : scale
(** 10 queries per N, 2 replicates — minutes-fast defaults. *)

val paper_scale : scale
(** 50 queries per N, 2 replicates — the paper's population sizes. *)

type outcome = {
  methods : Ljqo_core.Methods.t list;
  tfactors : float list;
  averages : float array array;  (** [averages.(mi).(ti)]; NaN if no query survived *)
  outlier_fractions : float array array;
  n_queries : int;  (** total queries attempted *)
  n_crashed : int;  (** queries dropped because a run raised *)
  n_timed_out : int;
      (** queries dropped because the deadline fired before any plan existed *)
  n_run_timeouts : int;
      (** individual method runs cut short by the deadline but salvaged with
          their incumbent plan (still included in the averages) *)
  crashes : Guard.failure list;  (** details of the dropped queries, in order *)
}

val trajectory_label :
  index:int -> method_:Ljqo_core.Methods.t -> replicate:int -> string
(** ["q<index>.<method>.r<replicate>"] — the {!Ljqo_obs.Obs.with_run} label
    under which {!run_experiment} records each run's incumbent trajectory.
    [Ljqo_learn.Dataset.parse_run_label] is its inverse. *)

val set_methods_override : Ljqo_core.Methods.t list option -> unit
(** Process-wide override of {!run_experiment}'s [methods] argument (the
    bench's [--methods] flag): when set, every experiment runs the given
    list instead of its hard-coded one.  [None] restores the defaults.  The
    override flows into the checkpoint fingerprint through the effective
    method list, so checkpoints never mix method sets. *)

val run_experiment :
  ?kappa:int ->
  ?config:Ljqo_core.Methods.config ->
  ?seed:int ->
  ?deadline:float ->
  ?checkpoint:Checkpoint.request ->
  ?run_label:string ->
  workload:Ljqo_querygen.Workload.t ->
  methods:Ljqo_core.Methods.t list ->
  model:Ljqo_cost.Cost_model.t ->
  tfactors:float list ->
  replicates:int ->
  unit ->
  outcome
(** [deadline] bounds every individual method run in wall-clock seconds (on
    top of the deterministic tick budget); see {!Ljqo_core.Optimizer.optimize}.

    [checkpoint] enables persistence: completed per-query results are
    appended (and flushed) to [dir/<run_label>.ckpt] as they finish, keyed by
    a fingerprint of the full experiment configuration.  With
    [resume = true], queries already in a matching file are skipped and their
    stored bits reused, making the resumed outcome identical to an
    uninterrupted run. *)

val heuristic_state_experiment :
  ?kappa:int ->
  ?seed:int ->
  workload:Ljqo_querygen.Workload.t ->
  model:Ljqo_cost.Cost_model.t ->
  tfactors:float list ->
  states:(Ljqo_catalog.Query.t -> charge:(int -> unit) -> Plan_source.t) list ->
  labels:string list ->
  unit ->
  float array array
(** For Tables 1 and 2: each "method" is a pure heuristic described as a
    lazy stream of states; at each time limit the best state generated and
    evaluated within the budget counts.  Scaling reference: the best of
    II/IAI/AGI at [9 N^2] on the same query.  Per-query crashes are logged
    and drop that query's samples only. *)

val outcome_table :
  title:string -> outcome -> Ljqo_report.Table.t
(** When queries were dropped, the title is annotated with the crash and
    timeout counts. *)

val outcome_chart :
  title:string -> ?x_label:string -> outcome -> string
