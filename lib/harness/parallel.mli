(** Multicore work distribution for the experiment harness (OCaml 5
    domains).

    Experiments are embarrassingly parallel across queries — each query's
    runs are pure functions of their seeds — and results are folded in
    input order, so output is bit-identical whatever the job count.

    The default is sequential; enable parallelism with [set_jobs], the
    bench's [--jobs] flag, or the [LJQO_JOBS] environment variable.  On a
    single hardware thread extra domains only add overhead. *)

val set_jobs : int -> unit
(** Override the job count for subsequent [map_array] calls (floored
    at 1). *)

val default_jobs : unit -> int
(** The configured job count: [set_jobs] value, else [LJQO_JOBS], else 1. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map], with elements processed by [jobs] domains pulling
    from a shared counter.  Worker exceptions propagate to the caller. *)
