(* The implementation lives in [Ljqo_stats.Parallel] so that lower layers
   (the bitset DP's per-size expansion in [Ljqo_core.Dp]) can share the same
   worker pool configuration; this alias keeps the historical harness-level
   name and, because the jobs setting is state inside the shared module,
   [set_jobs]/[LJQO_JOBS] configure both layers at once. *)

include Ljqo_stats.Parallel
