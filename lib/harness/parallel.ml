(* Multicore work distribution for the experiment harness (OCaml 5
   domains).  Every experiment is embarrassingly parallel across queries —
   each query's runs are pure functions of their seeds — so a simple
   work-stealing-free counter queue suffices.  Results are written each to
   its own slot and folded in input order afterwards, so the output is
   bit-identical whatever the job count.

   Default is sequential: pass --jobs (or set LJQO_JOBS) on multi-core
   hosts; on a single hardware thread extra domains only add scheduling
   overhead. *)

let configured_jobs = ref None

let set_jobs j = configured_jobs := Some (max 1 j)

let default_jobs () =
  match !configured_jobs with
  | Some j -> j
  | None -> (
    match Sys.getenv_opt "LJQO_JOBS" with
    | Some v -> ( match int_of_string_opt v with Some j when j >= 1 -> j | _ -> 1)
    | None -> 1)

let map_array ?(jobs = default_jobs ()) f a =
  let n = Array.length a in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 || n = 0 then Array.map f a
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f a.(i));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function Some r -> r | None -> failwith "Parallel.map_array: missing result")
      results
  end
