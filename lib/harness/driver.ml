open Ljqo_core
open Ljqo_querygen

type scale = { per_n : int; replicates : int }

let default_scale = { per_n = 10; replicates = 2 }

let paper_scale = { per_n = 50; replicates = 2 }

type outcome = {
  methods : Methods.t list;
  tfactors : float list;
  averages : float array array;
  outlier_fractions : float array array;
  n_queries : int;
}

let checkpoints_for ?kappa ~tfactors ~n_joins () =
  List.map
    (fun t -> Budget.ticks_for_limit ?ticks_per_unit:kappa ~t_factor:t ~n_joins ())
    tfactors

let max_budget ?kappa ~n_joins () =
  Budget.ticks_for_limit ?ticks_per_unit:kappa ~t_factor:9.0 ~n_joins ()

let run_seed ~seed ~query_seed ~replicate ~method_index =
  (* Mix the coordinates into a reproducible, well-spread seed. *)
  seed + (query_seed * 1009) + (replicate * 9176867) + (method_index * 277)

let run_experiment ?kappa ?config ?(seed = 1) ~workload ~methods ~model ~tfactors
    ~replicates () =
  let tfactors = List.sort_uniq compare tfactors in
  let n_methods = List.length methods in
  let n_factors = List.length tfactors in
  let entries = workload.Workload.entries in
  (* Per query (independent, hence parallelizable): the averaged-replicate
     scaled cost of each method at each checkpoint. *)
  let per_entry (entry : Workload.entry) =
    let n_joins = entry.n_joins in
    let checkpoints = checkpoints_for ?kappa ~tfactors ~n_joins () in
    let ticks = max_budget ?kappa ~n_joins () in
    (* curves.(mi).(rep).(ti) = cost at checkpoint; final9.(mi).(rep) *)
    let curves =
      List.mapi
        (fun mi m ->
          List.init replicates (fun rep ->
              let r =
                Optimizer.optimize ?config ~checkpoints ~method_:m ~model ~ticks
                  ~seed:(run_seed ~seed ~query_seed:entry.seed ~replicate:rep ~method_index:mi)
                  entry.query
              in
              (List.map snd r.checkpoints, r.cost)))
        methods
    in
    let best9 =
      List.fold_left
        (fun acc per_method ->
          List.fold_left (fun acc (_, final) -> Float.min acc final) acc per_method)
        infinity curves
    in
    let out = Array.make_matrix n_methods n_factors 0.0 in
    List.iteri
      (fun mi per_method ->
        let sums = Array.make n_factors 0.0 in
        List.iter
          (fun (costs, _) ->
            List.iteri (fun ti c -> sums.(ti) <- sums.(ti) +. (c /. best9)) costs)
          per_method;
        Array.iteri
          (fun ti s -> out.(mi).(ti) <- s /. float_of_int replicates)
          sums)
      curves;
    out
  in
  let results = Parallel.map_array per_entry entries in
  let scaled = Array.init n_methods (fun _ -> Array.make n_factors []) in
  Array.iter
    (fun out ->
      Array.iteri
        (fun mi row ->
          Array.iteri (fun ti v -> scaled.(mi).(ti) <- v :: scaled.(mi).(ti)) row)
        out)
    results;
  let averages =
    Array.map (Array.map (fun l -> Ljqo_stats.Scaled_cost.average (Array.of_list l))) scaled
  in
  let outlier_fractions =
    Array.map
      (Array.map (fun l -> Ljqo_stats.Scaled_cost.outlier_fraction (Array.of_list l)))
      scaled
  in
  {
    methods;
    tfactors;
    averages;
    outlier_fractions;
    n_queries = Array.length entries;
  }

(* Reference optimum for the heuristic-only tables: best of II/IAI/AGI at the
   full 9 N^2 budget. *)
let reference_best ?kappa ~model ~seed (entry : Workload.entry) =
  let ticks = max_budget ?kappa ~n_joins:entry.n_joins () in
  List.fold_left
    (fun acc (mi, m) ->
      let r =
        Optimizer.optimize ~method_:m ~model ~ticks
          ~seed:(run_seed ~seed ~query_seed:entry.seed ~replicate:0 ~method_index:mi)
          entry.query
      in
      Float.min acc r.cost)
    infinity
    [ (100, Methods.II); (101, Methods.IAI); (102, Methods.AGI) ]

let heuristic_state_experiment ?kappa ?(seed = 1) ~workload ~model ~tfactors ~states
    ~labels () =
  ignore labels;
  let tfactors = List.sort_uniq compare tfactors in
  let n_factors = List.length tfactors in
  let n_sources = List.length states in
  let scaled = Array.init n_sources (fun _ -> Array.make n_factors []) in
  Array.iter
    (fun (entry : Workload.entry) ->
      let best9 = reference_best ?kappa ~model ~seed entry in
      let n_joins = entry.n_joins in
      let budgets = checkpoints_for ?kappa ~tfactors ~n_joins () in
      List.iteri
        (fun si make_source ->
          (* One pass with the largest budget, recording the incumbent at
             each checkpoint — same protocol as the method runs. *)
          let ev =
            Evaluator.create ~checkpoints:budgets ~query:entry.query ~model
              ~ticks:(max_budget ?kappa ~n_joins ())
              ()
          in
          let source : Plan_source.t =
            make_source entry.query ~charge:(Evaluator.charge ev)
          in
          (try
             let rec drain () =
               match source () with
               | None -> ()
               | Some plan ->
                 ignore (Evaluator.eval ev plan);
                 drain ()
             in
             drain ()
           with Budget.Exhausted | Evaluator.Converged -> ());
          List.iteri
            (fun ti (_, c) -> scaled.(si).(ti) <- (c /. best9) :: scaled.(si).(ti))
            (Evaluator.checkpoint_costs ev))
        states)
    workload.Workload.entries;
  Array.map (Array.map (fun l -> Ljqo_stats.Scaled_cost.average (Array.of_list l))) scaled

let tf_label t = Printf.sprintf "%gN^2" t

let outcome_table ~title outcome =
  let table =
    Ljqo_report.Table.create ~title
      ~columns:(List.map tf_label outcome.tfactors)
  in
  List.iteri
    (fun mi m ->
      Ljqo_report.Table.add_float_row table ~label:(Methods.name m)
        (Array.to_list outcome.averages.(mi)))
    outcome.methods;
  table

let outcome_chart ~title ?(x_label = "time limit (multiples of N^2)") outcome =
  let series =
    List.mapi
      (fun mi m ->
        {
          Ljqo_report.Chart.name = Methods.name m;
          points =
            List.mapi (fun ti t -> (t, outcome.averages.(mi).(ti))) outcome.tfactors;
        })
      outcome.methods
  in
  Ljqo_report.Chart.render ~title ~x_label ~y_label:"avg scaled cost" series
