open Ljqo_core
open Ljqo_querygen
module Obs = Ljqo_obs.Obs

let log_src = Logs.Src.create "ljqo.driver" ~doc:"experiment driver"

module Log = (val Logs.src_log log_src)

type scale = { per_n : int; replicates : int }

let default_scale = { per_n = 10; replicates = 2 }

let paper_scale = { per_n = 50; replicates = 2 }

type outcome = {
  methods : Methods.t list;
  tfactors : float list;
  averages : float array array;
  outlier_fractions : float array array;
  n_queries : int;
  n_crashed : int;
  n_timed_out : int;
  n_run_timeouts : int;
  crashes : Guard.failure list;
}

(* The label keying one (query, method, replicate) run's trajectory in the
   Obs trajectory table; exposed so trajectory consumers (lib/learn's
   dataset extraction) can parse it back instead of guessing the format. *)
let trajectory_label ~index ~method_ ~replicate =
  Printf.sprintf "q%d.%s.r%d" index (Methods.name method_) replicate

let checkpoints_for ?kappa ~tfactors ~n_joins () =
  List.map
    (fun t -> Budget.ticks_for_limit ?ticks_per_unit:kappa ~t_factor:t ~n_joins ())
    tfactors

let max_budget ?kappa ~n_joins () =
  Budget.ticks_for_limit ?ticks_per_unit:kappa ~t_factor:9.0 ~n_joins ()

let run_seed ~seed ~query_seed ~replicate ~method_index =
  (* Mix the coordinates into a reproducible, well-spread seed. *)
  seed + (query_seed * 1009) + (replicate * 9176867) + (method_index * 277)

(* A process-wide method-set override (the bench's [--methods] flag), like
   [Parallel.set_jobs]: experiments hard-code the method lists the paper's
   artifacts call for, and the override lets one rerun any of them on a
   chosen subset — or on [portfolio] — without forking the experiment
   definitions.  It participates in the checkpoint fingerprint through the
   effective method list. *)
let methods_override : Methods.t list option ref = ref None

let set_methods_override ms = methods_override := ms

(* Configuration fingerprint binding a checkpoint file to one experiment: any
   input that changes the per-query numbers must appear here, so a resume can
   never silently mix results from different runs. *)
let fingerprint ?kappa ?config ~seed ~deadline ~workload ~methods ~model ~tfactors
    ~replicates () =
  let module M = (val model : Ljqo_cost.Cost_model.S) in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "seed=%d;kappa=%s;replicates=%d;model=%s;" seed
    (match kappa with None -> "-" | Some k -> string_of_int k)
    replicates M.name;
  add "deadline=%s;" (match deadline with None -> "-" | Some d -> Printf.sprintf "%h" d);
  add "config=%d;" (Hashtbl.hash config);
  List.iter (fun m -> add "m=%s;" (Methods.name m)) methods;
  List.iter (fun t -> add "t=%h;" t) tfactors;
  add "queries=%d;" (Array.length workload.Workload.entries);
  Array.iter
    (fun (e : Workload.entry) -> add "q=%d,%d;" e.n_joins e.seed)
    workload.Workload.entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let run_experiment ?kappa ?config ?(seed = 1) ?deadline ?checkpoint
    ?(run_label = "experiment") ~workload ~methods ~model ~tfactors ~replicates ()
    =
  let methods = Option.value !methods_override ~default:methods in
  let tfactors = List.sort_uniq compare tfactors in
  let n_methods = List.length methods in
  let n_factors = List.length tfactors in
  let entries = workload.Workload.entries in
  (* Per query (independent, hence parallelizable): the averaged-replicate
     scaled cost of each method at each checkpoint, plus how many of its runs
     were cut short by the wall-clock deadline. *)
  let per_entry (entry : Workload.entry) : Checkpoint.record =
    let n_joins = entry.n_joins in
    let checkpoints = checkpoints_for ?kappa ~tfactors ~n_joins () in
    let ticks = max_budget ?kappa ~n_joins () in
    let timeouts = ref 0 in
    (* curves.(mi).(rep).(ti) = cost at checkpoint; final9.(mi).(rep) *)
    let curves =
      List.mapi
        (fun mi m ->
          List.init replicates (fun rep ->
              (* The run label keys this (query, method, replicate) run's
                 trajectory; it is also the natural span name. *)
              let label =
                trajectory_label ~index:entry.index ~method_:m ~replicate:rep
              in
              let r =
                Obs.with_run label @@ fun () ->
                Obs.span "run"
                  ~fields:
                    [
                      ("query", Obs.I entry.index);
                      ("method", Obs.S (Methods.name m));
                      ("replicate", Obs.I rep);
                    ]
                @@ fun () ->
                Optimizer.optimize ?config ~checkpoints ?deadline ~method_:m
                  ~model ~ticks
                  ~seed:(run_seed ~seed ~query_seed:entry.seed ~replicate:rep ~method_index:mi)
                  entry.query
              in
              if r.timed_out then incr timeouts;
              (List.map snd r.checkpoints, r.cost)))
        methods
    in
    let best9 =
      List.fold_left
        (fun acc per_method ->
          List.fold_left (fun acc (_, final) -> Float.min acc final) acc per_method)
        infinity curves
    in
    let out = Array.make_matrix n_methods n_factors 0.0 in
    List.iteri
      (fun mi per_method ->
        let sums = Array.make n_factors 0.0 in
        List.iter
          (fun (costs, _) ->
            List.iteri (fun ti c -> sums.(ti) <- sums.(ti) +. (c /. best9)) costs)
          per_method;
        Array.iteri
          (fun ti s -> out.(mi).(ti) <- s /. float_of_int replicates)
          sums)
      curves;
    { Checkpoint.timeouts = !timeouts; out }
  in
  let store =
    Option.map
      (fun { Checkpoint.dir; resume } ->
        let fingerprint =
          fingerprint ?kappa ?config ~seed ~deadline ~workload ~methods ~model
            ~tfactors ~replicates ()
        in
        let path = Filename.concat dir (run_label ^ ".ckpt") in
        Checkpoint.open_store ~path ~fingerprint ~resume ())
      checkpoint
  in
  let guarded (entry : Workload.entry) =
    match Option.bind store (fun s -> Checkpoint.completed s entry.index) with
    | Some record -> Guard.Completed record
    | None ->
      let g =
        Guard.run ~query_id:entry.index (fun () ->
            Obs.with_phase Obs.Driver (fun () ->
                Obs.span "query"
                  ~fields:
                    [ ("index", Obs.I entry.index); ("n_joins", Obs.I entry.n_joins) ]
                  (fun () -> per_entry entry)))
      in
      (match (g, store) with
      | Guard.Completed record, Some s -> Checkpoint.record s ~index:entry.index record
      | _ -> ());
      if Obs.tracing () then
        Obs.trace "query"
          [ ("index", Obs.I entry.index);
            ("n_joins", Obs.I entry.n_joins);
            ( "outcome",
              Obs.S
                (match g with
                | Guard.Completed _ -> "completed"
                | Guard.Crashed _ -> "crashed"
                | Guard.Timed_out _ -> "timed_out") ) ];
      g
  in
  let results = Parallel.map_array guarded entries in
  Option.iter Checkpoint.close store;
  let scaled = Array.init n_methods (fun _ -> Array.make n_factors []) in
  let n_crashed = ref 0 and n_timed_out = ref 0 and n_run_timeouts = ref 0 in
  let crashes = ref [] in
  Array.iter
    (function
      | Guard.Completed { Checkpoint.timeouts; out } ->
        Obs.bump Obs.Queries_completed;
        Obs.add Obs.Run_timeouts timeouts;
        n_run_timeouts := !n_run_timeouts + timeouts;
        Array.iteri
          (fun mi row ->
            Array.iteri (fun ti v -> scaled.(mi).(ti) <- v :: scaled.(mi).(ti)) row)
          out
      | Guard.Crashed failure ->
        Obs.bump Obs.Queries_crashed;
        incr n_crashed;
        crashes := failure :: !crashes
      | Guard.Timed_out _ ->
        Obs.bump Obs.Queries_timed_out;
        incr n_timed_out)
    results;
  List.iter
    (fun f -> Log.err (fun m -> m "%a" Guard.pp_failure f))
    (List.rev !crashes);
  if !n_timed_out > 0 then
    Log.warn (fun m ->
        m "%d quer%s dropped at the wall-clock deadline" !n_timed_out
          (if !n_timed_out = 1 then "y" else "ies"));
  let stat f =
    Array.map
      (Array.map (fun l ->
           if l = [] then Float.nan else f (Array.of_list l)))
      scaled
  in
  let averages = stat Ljqo_stats.Scaled_cost.average in
  let outlier_fractions = stat Ljqo_stats.Scaled_cost.outlier_fraction in
  {
    methods;
    tfactors;
    averages;
    outlier_fractions;
    n_queries = Array.length entries;
    n_crashed = !n_crashed;
    n_timed_out = !n_timed_out;
    n_run_timeouts = !n_run_timeouts;
    crashes = List.rev !crashes;
  }

(* Reference optimum for the heuristic-only tables: best of II/IAI/AGI at the
   full 9 N^2 budget. *)
let reference_best ?kappa ~model ~seed (entry : Workload.entry) =
  let ticks = max_budget ?kappa ~n_joins:entry.n_joins () in
  List.fold_left
    (fun acc (mi, m) ->
      let r =
        Optimizer.optimize ~method_:m ~model ~ticks
          ~seed:(run_seed ~seed ~query_seed:entry.seed ~replicate:0 ~method_index:mi)
          entry.query
      in
      Float.min acc r.cost)
    infinity
    [ (100, Methods.II); (101, Methods.IAI); (102, Methods.AGI) ]

let heuristic_state_experiment ?kappa ?(seed = 1) ~workload ~model ~tfactors ~states
    ~labels () =
  ignore labels;
  let tfactors = List.sort_uniq compare tfactors in
  let n_factors = List.length tfactors in
  let n_sources = List.length states in
  let scaled = Array.init n_sources (fun _ -> Array.make n_factors []) in
  Array.iter
    (fun (entry : Workload.entry) ->
      (* Guarded like the method runs: a crash in one heuristic source on one
         query costs that query's samples only. *)
      match
        Guard.run ~query_id:entry.index (fun () ->
            let best9 = reference_best ?kappa ~model ~seed entry in
            let n_joins = entry.n_joins in
            let budgets = checkpoints_for ?kappa ~tfactors ~n_joins () in
            List.mapi
              (fun si make_source ->
                (* One pass with the largest budget, recording the incumbent at
                   each checkpoint — same protocol as the method runs. *)
                let ev =
                  Evaluator.create ~checkpoints:budgets ~query:entry.query ~model
                    ~ticks:(max_budget ?kappa ~n_joins ())
                    ()
                in
                let source : Plan_source.t =
                  make_source entry.query ~charge:(Evaluator.charge ev)
                in
                (try
                   let rec drain () =
                     match source () with
                     | None -> ()
                     | Some plan ->
                       ignore (Evaluator.eval ev plan);
                       drain ()
                   in
                   drain ()
                 with Budget.Exhausted | Evaluator.Converged -> ());
                (si, List.map (fun (_, c) -> c /. best9) (Evaluator.checkpoint_costs ev)))
              states)
      with
      | Guard.Completed per_source ->
        List.iter
          (fun (si, ratios) ->
            List.iteri
              (fun ti ratio -> scaled.(si).(ti) <- ratio :: scaled.(si).(ti))
              ratios)
          per_source
      | (Guard.Crashed _ | Guard.Timed_out _) as g ->
        Log.err (fun m -> m "heuristic state run: %s" (Guard.describe g)))
    workload.Workload.entries;
  Array.map
    (Array.map (fun l ->
         if l = [] then Float.nan
         else Ljqo_stats.Scaled_cost.average (Array.of_list l)))
    scaled

let tf_label t = Printf.sprintf "%gN^2" t

let outcome_title ~title outcome =
  let notes = [] in
  let notes =
    if outcome.n_run_timeouts = 0 then notes
    else
      Printf.sprintf "%d runs cut at the deadline" outcome.n_run_timeouts :: notes
  in
  let notes =
    if outcome.n_crashed = 0 && outcome.n_timed_out = 0 then notes
    else
      Printf.sprintf "%d/%d queries dropped: %d crashed, %d timed out"
        (outcome.n_crashed + outcome.n_timed_out)
        outcome.n_queries outcome.n_crashed outcome.n_timed_out
      :: notes
  in
  if notes = [] then title
  else Printf.sprintf "%s [%s]" title (String.concat "; " notes)

let outcome_table ~title outcome =
  let table =
    Ljqo_report.Table.create
      ~title:(outcome_title ~title outcome)
      ~columns:(List.map tf_label outcome.tfactors)
  in
  List.iteri
    (fun mi m ->
      Ljqo_report.Table.add_float_row table ~label:(Methods.name m)
        (Array.to_list outcome.averages.(mi)))
    outcome.methods;
  table

let outcome_chart ~title ?(x_label = "time limit (multiples of N^2)") outcome =
  let series =
    List.mapi
      (fun mi m ->
        {
          Ljqo_report.Chart.name = Methods.name m;
          points =
            List.mapi (fun ti t -> (t, outcome.averages.(mi).(ti))) outcome.tfactors;
        })
      outcome.methods
  in
  Ljqo_report.Chart.render
    ~title:(outcome_title ~title outcome)
    ~x_label ~y_label:"avg scaled cost" series
