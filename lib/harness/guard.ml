(* Run isolation for the experiment harness.

   Every per-query (or per-replicate) unit of work is executed through
   [run], which turns the three ways a run can end — normal completion,
   wall-clock timeout, arbitrary crash — into an ordinary value.  Long batch
   experiments then record the failure and keep going instead of losing
   hours of completed work to one bad query. *)

let log_src = Logs.Src.create "ljqo.guard" ~doc:"per-run isolation"

module Log = (val Logs.src_log log_src)

type failure = { query_id : int; exn : string; backtrace : string }

type 'a t =
  | Completed of 'a
  | Crashed of failure
  | Timed_out of { query_id : int }

let run ~query_id f =
  match f () with
  | v -> Completed v
  | exception Ljqo_core.Budget.Deadline_exceeded ->
    Log.warn (fun m -> m "query %d: wall-clock deadline exceeded" query_id);
    Timed_out { query_id }
  | exception exn ->
    let backtrace = Printexc.get_backtrace () in
    let exn = Printexc.to_string exn in
    Log.err (fun m -> m "query %d crashed: %s" query_id exn);
    Crashed { query_id; exn; backtrace }

let completed = function Completed v -> Some v | Crashed _ | Timed_out _ -> None

let pp_failure ppf { query_id; exn; backtrace } =
  Format.fprintf ppf "query %d: %s" query_id exn;
  if backtrace <> "" then Format.fprintf ppf "@,%s" (String.trim backtrace)

let describe = function
  | Completed _ -> "completed"
  | Crashed f -> Format.asprintf "crashed (%a)" pp_failure f
  | Timed_out { query_id } -> Printf.sprintf "query %d: timed out" query_id
