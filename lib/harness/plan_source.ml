(* A lazy stream of candidate plans, as produced by the constructive
   heuristics (augmentation starts, KBZ roots). *)
type t = unit -> Ljqo_core.Plan.t option
