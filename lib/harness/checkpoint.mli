(** Crash-safe persistence of completed per-query experiment results.

    A checkpoint file is line-oriented text: a header binding it to a
    configuration fingerprint, then one [R]-record per completed query
    holding that query's per-method/per-tfactor result matrix as IEEE-754
    bit patterns in hex.  Records are appended and flushed as each query
    completes (and on SIGINT / process exit), so interrupting an experiment
    at any instant leaves a loadable file; resuming skips the stored queries
    and reproduces the uninterrupted outcome bit for bit.

    File format (v2 — each record line ends with the MD5 of everything
    before the final space, so byte-level corruption is rejected rather
    than resumed from):

    {v
    # ljqo-checkpoint v2 <fingerprint>
    R <index> <timeouts> <rows> <cols> <hex64> ... <hex64> <md5>
    v}

    Tokens are strictly canonical: decimals as [%d] prints them and bare
    lowercase hex as [%Lx] prints it.  Leniencies of [int_of_string]
    (underscores, [0x]/[0o]/[0b] prefixes, signs) are rejected, so a
    garbled line can never parse into a plausible bogus record. *)

type request = { dir : string; resume : bool }
(** What the CLI hands to the driver: where checkpoint files live and
    whether completed work found there should be reused. *)

type record = {
  timeouts : int;  (** method runs aborted at the deadline within this query *)
  out : float array array;  (** per-method, per-tfactor averaged scaled costs *)
}

type t

val open_store : path:string -> fingerprint:string -> resume:bool -> unit -> t
(** Creates parent directories as needed.  With [resume], an existing file
    whose header matches [fingerprint] has its records loaded (malformed —
    e.g. torn — lines are skipped with a warning) and is appended to;
    otherwise the file is started fresh.  Also installs (once) a SIGINT
    handler and [at_exit] hook flushing all open stores. *)

val path : t -> string

val completed : t -> int -> record option
(** The stored record for a query index, if it was loaded at [open_store]. *)

val n_completed : t -> int

val record : t -> index:int -> record -> unit
(** Append one completed query's record and flush.  Thread-safe. *)

val close : t -> unit

val flush_all : unit -> unit
(** Flush every open store (what the SIGINT handler runs). *)

(** {1 Wire format} — exposed for corruption tests. *)

val record_line : int -> record -> string
(** The exact line (newline included) written for a record. *)

val parse_record : string -> (int * record) option
(** Parse one record line; [None] on any malformation, including a
    checksum mismatch or a non-canonical token. *)
