(** A lazy stream of candidate plans, as produced by the constructive
    heuristics (augmentation starts, KBZ roots): each call returns the next
    state or [None] when the heuristic has no more to offer. *)

type t = unit -> Ljqo_core.Plan.t option
