(** Run isolation: exception capture around per-query experiment runs.

    [run] executes one unit of work and reifies its outcome.  A crash is
    captured with the exception text and (when [Printexc.record_backtrace]
    is on, e.g. via [OCAMLRUNPARAM=b] or the bench entry point) its
    backtrace; a [Budget.Deadline_exceeded] escape is recorded as a timeout.
    The driver maps guarded runs over the workload so one pathological query
    costs exactly one result slot, never the experiment. *)

type failure = { query_id : int; exn : string; backtrace : string }

type 'a t =
  | Completed of 'a
  | Crashed of failure
  | Timed_out of { query_id : int }

val run : query_id:int -> (unit -> 'a) -> 'a t
(** Never raises (short of asynchronous exceptions re-raised by the captured
    function's cleanup). *)

val completed : 'a t -> 'a option

val pp_failure : Format.formatter -> failure -> unit

val describe : 'a t -> string
