type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Column of { table : string; column : string }
  | Const of float

type predicate = { left : operand; op : comparison; right : operand }

type from_item = { table : string; alias : string option }

type select = { from : from_item list; where : predicate list }

let binder item = match item.alias with Some a -> a | None -> item.table

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_operand ppf = function
  | Column { table; column } -> Format.fprintf ppf "%s.%s" table column
  | Const c -> Format.fprintf ppf "%g" c

let pp_predicate ppf p =
  Format.fprintf ppf "%a %s %a" pp_operand p.left (comparison_to_string p.op)
    pp_operand p.right
