(** Abstract syntax of the supported SQL subset.

    Conjunctive select-project-join blocks: a [FROM] list with optional
    aliases (aliases make self-joins expressible) and a [WHERE] conjunction
    of comparisons between qualified columns and numeric constants.
    Projection lists are parsed and ignored — the optimizer's problem is
    the join order, and the paper's "perform projections as soon as
    possible" heuristic is orthogonal to it. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Column of { table : string; column : string }
      (** [table] is the FROM alias (or table name when unaliased) *)
  | Const of float

type predicate = { left : operand; op : comparison; right : operand }

type from_item = { table : string; alias : string option }

type select = {
  from : from_item list;
  where : predicate list;  (** conjunction *)
}

val binder : from_item -> string
(** The name predicates use: the alias if present, else the table name. *)

val comparison_to_string : comparison -> string

val pp_predicate : Format.formatter -> predicate -> unit
