(** Translation of a SQL block into an optimizer query.

    Each FROM item becomes a relation (base cardinality from the catalog);
    WHERE predicates split into:

    - {b joins} — column-to-column equalities across different FROM items,
      with selectivity [1 / max(D_left, D_right)] from the columns'
      distinct counts (non-equality column-column predicates are
      unsupported);
    - {b selections} — column-vs-constant comparisons, with selectivity
      from the column's histogram when it has one, else from range
      interpolation when it has a declared range, else the classic
      System-R defaults (1/distinct for [=], 1/3 for inequalities — the
      0.34 of the paper's selectivity list).

    The translated relation's distinct-value fraction — the [D_k] the cost
    model's hash-chain term and the rank heuristics read — is taken from
    the relation's most selective join column (the one with the largest
    distinct count), an approximation recorded here because the optimizer's
    catalog keys one distinct count per relation. *)

type binding = {
  binder : string;  (** the alias/table name predicates used *)
  table : string;  (** the underlying catalog table *)
  relation : int;  (** relation id in the translated query *)
}

type result = {
  query : Ljqo_catalog.Query.t;
  bindings : binding list;  (** in FROM order; index = relation id *)
  selection_details : (string * string * float) list;
      (** (binder, predicate text, selectivity) for each selection *)
}

exception Error of string

val translate : Stats_catalog.t -> Ast.select -> result
(** Raises [Error] on unknown tables/columns, unsupported predicate shapes
    (column-column non-equality, constant-constant), or an empty FROM. *)

val default_inequality_selectivity : float
(** 0.34, the paper's (and System R's) magic third. *)
