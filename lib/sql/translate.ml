open Ljqo_catalog

type binding = { binder : string; table : string; relation : int }

type result = {
  query : Query.t;
  bindings : binding list;
  selection_details : (string * string * float) list;
}

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let default_inequality_selectivity = 0.34

let clamp_selectivity s = Float.max 1e-9 (Float.min 1.0 s)

(* Selectivity of [column op const] from the column's statistics. *)
let selection_selectivity (cs : Stats_catalog.column_stats) op const =
  let from_histogram h =
    match op with
    | Ast.Eq -> Histogram.selectivity_eq h ~distinct:cs.distinct const
    | Ast.Ne -> 1.0 -. Histogram.selectivity_eq h ~distinct:cs.distinct const
    | Ast.Lt -> Histogram.selectivity_lt h const
    | Ast.Le ->
      Histogram.selectivity_lt h const
      +. Histogram.selectivity_eq h ~distinct:cs.distinct const
    | Ast.Gt ->
      Histogram.selectivity_ge h const
      -. Histogram.selectivity_eq h ~distinct:cs.distinct const
    | Ast.Ge -> Histogram.selectivity_ge h const
  in
  let from_range (lo, hi) =
    (* linear interpolation over the declared range *)
    let frac = (const -. lo) /. (hi -. lo) in
    let frac = Float.max 0.0 (Float.min 1.0 frac) in
    match op with
    | Ast.Eq -> 1.0 /. float_of_int cs.distinct
    | Ast.Ne -> 1.0 -. (1.0 /. float_of_int cs.distinct)
    | Ast.Lt | Ast.Le -> frac
    | Ast.Gt | Ast.Ge -> 1.0 -. frac
  in
  let s =
    match (cs.histogram, cs.range) with
    | Some h, _ -> from_histogram h
    | None, Some r -> from_range r
    | None, None -> (
      match op with
      | Ast.Eq -> 1.0 /. float_of_int cs.distinct
      | Ast.Ne -> 1.0 -. (1.0 /. float_of_int cs.distinct)
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> default_inequality_selectivity)
  in
  clamp_selectivity s

let translate catalog (select : Ast.select) =
  if select.from = [] then error "the FROM list is empty";
  let bindings =
    List.mapi
      (fun i (item : Ast.from_item) ->
        match Stats_catalog.find_table catalog item.table with
        | None -> error "unknown table %S" item.table
        | Some _ -> { binder = Ast.binder item; table = item.table; relation = i })
      select.from
  in
  let resolve_binder name =
    match List.find_opt (fun b -> b.binder = name) bindings with
    | Some b -> b
    | None -> error "unknown table binding %S (missing from FROM?)" name
  in
  let column_stats b column =
    match Stats_catalog.find_column catalog ~table:b.table ~column with
    | Some cs -> cs
    | None -> error "no statistics for column %s.%s" b.table column
  in
  (* split predicates *)
  let joins = ref [] in
  let selections = ref (List.map (fun _ -> []) bindings) in
  let selection_details = ref [] in
  let add_selection b text s =
    selections :=
      List.mapi
        (fun i sels -> if i = b.relation then s :: sels else sels)
        !selections;
    selection_details := (b.binder, text, s) :: !selection_details
  in
  List.iter
    (fun (p : Ast.predicate) ->
      let text = Format.asprintf "%a" Ast.pp_predicate p in
      match (p.left, p.op, p.right) with
      | Ast.Column l, Ast.Eq, Ast.Column r when l.table <> r.table ->
        let bl = resolve_binder l.table and br = resolve_binder r.table in
        let dl = (column_stats bl l.column).distinct in
        let dr = (column_stats br r.column).distinct in
        let selectivity =
          clamp_selectivity (1.0 /. float_of_int (max dl dr))
        in
        joins :=
          {
            Join_graph.u = bl.relation;
            v = br.relation;
            selectivity;
          }
          :: !joins
      | Ast.Column l, _, Ast.Column r when l.table <> r.table ->
        error "unsupported theta-join predicate: %s" text
      | Ast.Column l, op, Ast.Const c | Ast.Const c, op, Ast.Column l ->
        (* normalize const-on-left comparisons by flipping the operator *)
        let op =
          if
            match p.left with Ast.Const _ -> true | Ast.Column _ -> false
          then
            match op with
            | Ast.Lt -> Ast.Gt
            | Ast.Le -> Ast.Ge
            | Ast.Gt -> Ast.Lt
            | Ast.Ge -> Ast.Le
            | (Ast.Eq | Ast.Ne) as o -> o
          else op
        in
        let b = resolve_binder l.table in
        let cs = column_stats b l.column in
        add_selection b text (selection_selectivity cs op c)
      | Ast.Column l, op, Ast.Column r ->
        (* same binder on both sides: treat as a restriction with the
           System-R default (no correlation statistics) *)
        ignore (column_stats (resolve_binder l.table) l.column);
        ignore (column_stats (resolve_binder r.table) r.column);
        let b = resolve_binder l.table in
        let s =
          match op with
          | Ast.Eq -> 0.1
          | _ -> default_inequality_selectivity
        in
        add_selection b text s
      | Ast.Const _, _, Ast.Const _ ->
        error "constant-only predicate: %s" text)
    select.where;
  (* Per-relation distinct fraction: from the widest join column. *)
  let join_column_distinct = Array.make (List.length bindings) 0 in
  List.iter
    (fun (p : Ast.predicate) ->
      match (p.left, p.op, p.right) with
      | Ast.Column l, Ast.Eq, Ast.Column r when l.table <> r.table ->
        let bl = resolve_binder l.table and br = resolve_binder r.table in
        let dl = (column_stats bl l.column).distinct in
        let dr = (column_stats br r.column).distinct in
        join_column_distinct.(bl.relation) <- max join_column_distinct.(bl.relation) dl;
        join_column_distinct.(br.relation) <- max join_column_distinct.(br.relation) dr
      | _ -> ())
    select.where;
  let relations =
    Array.of_list
      (List.map
         (fun b ->
           let ts = Option.get (Stats_catalog.find_table catalog b.table) in
           let sels = List.nth !selections b.relation in
           let distinct_fraction =
             if join_column_distinct.(b.relation) = 0 then 0.1
             else
               Float.max 1e-6
                 (Float.min 1.0
                    (float_of_int join_column_distinct.(b.relation)
                    /. float_of_int ts.rows))
           in
           Relation.make ~id:b.relation ~name:b.binder
             ~base_cardinality:ts.Stats_catalog.rows ~selections:sels
             ~distinct_fraction ())
         bindings)
  in
  let query =
    Query.make ~relations
      ~graph:(Join_graph.make ~n:(Array.length relations) !joins)
  in
  { query; bindings; selection_details = List.rev !selection_details }
