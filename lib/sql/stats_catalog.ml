type column_stats = {
  distinct : int;
  range : (float * float) option;
  histogram : Ljqo_catalog.Histogram.t option;
}

type table_stats = { rows : int; columns : (string * column_stats) list }

type t = (string * table_stats) list (* keys lowercased *)

let empty = []

let key s = String.lowercase_ascii s

let find_table t name = List.assoc_opt (key name) t

let add_table t ~name ~rows =
  if rows < 1 then invalid_arg "Stats_catalog.add_table: rows < 1";
  if find_table t name <> None then
    invalid_arg ("Stats_catalog.add_table: duplicate table " ^ name);
  (key name, { rows; columns = [] }) :: t

let update_table t name f =
  List.map (fun (n, ts) -> if n = key name then (n, f ts) else (n, ts)) t

let find_column t ~table ~column =
  match find_table t table with
  | None -> None
  | Some ts -> List.assoc_opt (key column) ts.columns

let add_column t ~table ~column ?range ~distinct () =
  if distinct < 1 then invalid_arg "Stats_catalog.add_column: distinct < 1";
  (match range with
  | Some (lo, hi) when lo >= hi -> invalid_arg "Stats_catalog.add_column: empty range"
  | _ -> ());
  match find_table t table with
  | None -> invalid_arg ("Stats_catalog.add_column: unknown table " ^ table)
  | Some ts ->
    if List.mem_assoc (key column) ts.columns then
      invalid_arg ("Stats_catalog.add_column: duplicate column " ^ column);
    update_table t table (fun ts ->
        {
          ts with
          columns = ts.columns @ [ (key column, { distinct; range; histogram = None }) ];
        })

let add_histogram t ~table ~column histogram =
  match find_column t ~table ~column with
  | None ->
    invalid_arg
      (Printf.sprintf "Stats_catalog.add_histogram: unknown column %s.%s" table column)
  | Some _ ->
    update_table t table (fun ts ->
        {
          ts with
          columns =
            List.map
              (fun (c, cs) ->
                if c = key column then (c, { cs with histogram = Some histogram })
                else (c, cs))
              ts.columns;
        })

let table_names t = List.rev_map fst t

(* --- text format -------------------------------------------------------- *)

exception Parse_error of { line : int; message : string }

(* The format is line-regular enough for a hand lexer over the QDL one to
   be overkill: split into ';'-terminated statements, track lines. *)
type stmt = { line : int; words : string list }

let statements input =
  let stmts = ref [] in
  let buf = Buffer.create 64 in
  let line = ref 1 in
  let stmt_line = ref 1 in
  let flush_stmt () =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    let words =
      String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) text)
      |> List.filter (fun w -> w <> "")
    in
    if words <> [] then stmts := { line = !stmt_line; words } :: !stmts;
    stmt_line := !line
  in
  let in_comment = ref false in
  String.iter
    (fun c ->
      match c with
      | '#' -> in_comment := true
      | '\n' ->
        in_comment := false;
        incr line;
        Buffer.add_char buf ' '
      | ';' when not !in_comment -> flush_stmt ()
      | c when not !in_comment -> Buffer.add_char buf c
      | _ -> ())
    input;
  (* trailing text without ';' *)
  flush_stmt ();
  List.rev !stmts

let fail line message = raise (Parse_error { line; message })

let parse_number line what w =
  match float_of_string_opt w with
  | Some f -> f
  | None -> fail line (Printf.sprintf "expected %s but found %S" what w)

let parse_int line what w =
  match int_of_string_opt w with
  | Some i -> i
  | None -> fail line (Printf.sprintf "expected %s but found %S" what w)

let split_qualified line w =
  match String.split_on_char '.' w with
  | [ table; column ] when table <> "" && column <> "" -> (table, column)
  | _ -> fail line (Printf.sprintf "expected table.column but found %S" w)

let parse input =
  let catalog = ref empty in
  List.iter
    (fun { line; words } ->
      let invalid f = try f () with Invalid_argument m -> fail line m in
      match words with
      | [ "table"; name; "rows"; rows ] ->
        let rows = parse_int line "a row count" rows in
        invalid (fun () -> catalog := add_table !catalog ~name ~rows)
      | "column" :: qualified :: "distinct" :: distinct :: rest ->
        let table, column = split_qualified line qualified in
        let distinct = parse_int line "a distinct count" distinct in
        let range =
          match rest with
          | [] -> None
          | [ "range"; lo; hi ] ->
            Some (parse_number line "a range bound" lo, parse_number line "a range bound" hi)
          | _ -> fail line "malformed column statement"
        in
        invalid (fun () ->
            catalog := add_column !catalog ~table ~column ?range ~distinct ())
      | "histogram" :: qualified :: lo :: hi :: "counts" :: counts ->
        let table, column = split_qualified line qualified in
        let lo = parse_number line "a range bound" lo in
        let hi = parse_number line "a range bound" hi in
        if counts = [] then fail line "histogram needs at least one count";
        let counts =
          Array.of_list (List.map (parse_int line "a bucket count") counts)
        in
        let h =
          try Ljqo_catalog.Histogram.of_counts ~lo ~hi ~counts
          with Invalid_argument m -> fail line m
        in
        invalid (fun () -> catalog := add_histogram !catalog ~table ~column h)
      | w :: _ -> fail line (Printf.sprintf "unknown statement starting with %S" w)
      | [] -> ())
    (statements input);
  !catalog

let parse_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents
