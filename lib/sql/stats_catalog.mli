(** Table and column statistics for the SQL front end.

    A catalog maps table names (case-insensitive) to row counts and
    per-column statistics: distinct count, optional value range, optional
    histogram.  It can be built programmatically or parsed from the text
    format below ([#] comments, statements end with [;]):

    {v
    table customer rows 10000;
    column customer.id distinct 10000;
    column customer.age distinct 73 range 18 95;
    histogram customer.age 18 95 counts 120 340 280 160 70 30;
    v}

    A [histogram] line partitions the given range into equal-width buckets
    with the given counts; it requires the column to be declared first. *)

type column_stats = {
  distinct : int;
  range : (float * float) option;
  histogram : Ljqo_catalog.Histogram.t option;
}

type table_stats = { rows : int; columns : (string * column_stats) list }

type t

val empty : t

val add_table : t -> name:string -> rows:int -> t
(** Raises [Invalid_argument] on duplicates or [rows < 1]. *)

val add_column : t -> table:string -> column:string -> ?range:float * float ->
  distinct:int -> unit -> t
(** Raises [Invalid_argument] on unknown table, duplicate column, or
    [distinct < 1]. *)

val add_histogram : t -> table:string -> column:string -> Ljqo_catalog.Histogram.t -> t

val find_table : t -> string -> table_stats option
(** Case-insensitive. *)

val find_column : t -> table:string -> column:string -> column_stats option

val table_names : t -> string list

exception Parse_error of { line : int; message : string }

val parse : string -> t

val parse_file : string -> t
