(** Parser for the SQL subset.

    {v
    query      ::= "SELECT" projection "FROM" from_item ("," from_item)*
                   [ "WHERE" predicate ("AND" predicate)* ] [";"]
    projection ::= "*" | column ("," column)*
    from_item  ::= IDENT [ IDENT ]          -- table with optional alias
    predicate  ::= operand cmp operand
    operand    ::= column | NUMBER
    column     ::= IDENT "." IDENT          -- alias.column (qualification
                                               is required)
    cmp        ::= "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
    v}

    The projection list is parsed and discarded.  [OR], subqueries, string
    literals and unqualified column references are not supported and fail
    with a located error. *)

exception Error of { line : int; message : string }

val parse : string -> Ast.select

val parse_file : string -> Ast.select
