(** Lexer for the SQL subset.

    Keywords are case-insensitive ([SELECT]/[select]); identifiers keep
    their case.  [--] starts a comment to end of line.  Numbers are the
    usual integer/decimal/scientific forms. *)

type token =
  | Select
  | From
  | Where
  | And
  | Star
  | Comma
  | Dot
  | Semicolon
  | Cmp of Ast.comparison
  | Ident of string
  | Number of float
  | Eof

exception Error of { line : int; message : string }

type t

val of_string : string -> t
val next : t -> token
val peek : t -> token
val line : t -> int

val tokenize : string -> token list
(** Convenience for tests; includes the final [Eof]. *)

val token_to_string : token -> string
