exception Error of { line : int; message : string }

let fail lx message = raise (Error { line = Sql_lexer.line lx; message })

let expect lx expected =
  let tok = Sql_lexer.next lx in
  if tok <> expected then
    fail lx
      (Printf.sprintf "expected %s but found %s"
         (Sql_lexer.token_to_string expected)
         (Sql_lexer.token_to_string tok))

let expect_ident lx what =
  match Sql_lexer.next lx with
  | Sql_lexer.Ident s -> s
  | tok ->
    fail lx
      (Printf.sprintf "expected %s but found %s" what (Sql_lexer.token_to_string tok))

(* column ::= IDENT "." IDENT *)
let parse_column lx first =
  expect lx Sql_lexer.Dot;
  let column = expect_ident lx "a column name" in
  Ast.Column { table = first; column }

let parse_operand lx =
  match Sql_lexer.next lx with
  | Sql_lexer.Number f -> Ast.Const f
  | Sql_lexer.Ident table -> parse_column lx table
  | tok ->
    fail lx
      (Printf.sprintf "expected a column or a constant but found %s"
         (Sql_lexer.token_to_string tok))

let parse_predicate lx =
  let left = parse_operand lx in
  let op =
    match Sql_lexer.next lx with
    | Sql_lexer.Cmp c -> c
    | tok ->
      fail lx
        (Printf.sprintf "expected a comparison but found %s"
           (Sql_lexer.token_to_string tok))
  in
  let right = parse_operand lx in
  { Ast.left; op; right }

let parse_projection lx =
  (* "*" or a column list; both are discarded. *)
  match Sql_lexer.peek lx with
  | Sql_lexer.Star -> ignore (Sql_lexer.next lx)
  | _ ->
    let rec columns () =
      let first = expect_ident lx "a column reference" in
      ignore (parse_column lx first);
      match Sql_lexer.peek lx with
      | Sql_lexer.Comma ->
        ignore (Sql_lexer.next lx);
        columns ()
      | _ -> ()
    in
    columns ()

let parse_from_item lx =
  let table = expect_ident lx "a table name" in
  match Sql_lexer.peek lx with
  | Sql_lexer.Ident alias ->
    ignore (Sql_lexer.next lx);
    { Ast.table; alias = Some alias }
  | _ -> { Ast.table; alias = None }

let parse input =
  let lx = Sql_lexer.of_string input in
  try
    expect lx Sql_lexer.Select;
    parse_projection lx;
    expect lx Sql_lexer.From;
    let rec from_items acc =
      let item = parse_from_item lx in
      match Sql_lexer.peek lx with
      | Sql_lexer.Comma ->
        ignore (Sql_lexer.next lx);
        from_items (item :: acc)
      | _ -> List.rev (item :: acc)
    in
    let from = from_items [] in
    let where =
      match Sql_lexer.peek lx with
      | Sql_lexer.Where ->
        ignore (Sql_lexer.next lx);
        let rec predicates acc =
          let p = parse_predicate lx in
          match Sql_lexer.peek lx with
          | Sql_lexer.And ->
            ignore (Sql_lexer.next lx);
            predicates (p :: acc)
          | _ -> List.rev (p :: acc)
        in
        predicates []
      | _ -> []
    in
    (match Sql_lexer.peek lx with
    | Sql_lexer.Semicolon -> ignore (Sql_lexer.next lx)
    | _ -> ());
    (match Sql_lexer.next lx with
    | Sql_lexer.Eof -> ()
    | tok ->
      fail lx
        (Printf.sprintf "unexpected %s after the query"
           (Sql_lexer.token_to_string tok)));
    (* duplicate binders are ambiguous *)
    let binders = List.map Ast.binder from in
    let sorted = List.sort compare binders in
    let rec dup = function
      | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
      | _ -> None
    in
    (match dup sorted with
    | Some name -> fail lx (Printf.sprintf "duplicate table binding %S" name)
    | None -> ());
    { Ast.from; where }
  with Sql_lexer.Error { line; message } -> raise (Error { line; message })

let parse_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents
