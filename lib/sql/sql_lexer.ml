type token =
  | Select
  | From
  | Where
  | And
  | Star
  | Comma
  | Dot
  | Semicolon
  | Cmp of Ast.comparison
  | Ident of string
  | Number of float
  | Eof

exception Error of { line : int; message : string }

type t = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable lookahead : token option;
}

let of_string input = { input; pos = 0; line = 1; lookahead = None }

let fail t message = raise (Error { line = t.line; message })

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let keyword_of = function
  | "select" -> Some Select
  | "from" -> Some From
  | "where" -> Some Where
  | "and" -> Some And
  | _ -> None

let rec skip_blanks t =
  if t.pos < String.length t.input then begin
    match t.input.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_blanks t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      skip_blanks t
    | '-'
      when t.pos + 1 < String.length t.input && t.input.[t.pos + 1] = '-' ->
      while t.pos < String.length t.input && t.input.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_blanks t
    | _ -> ()
  end

let lex_token t =
  skip_blanks t;
  if t.pos >= String.length t.input then Eof
  else begin
    let c = t.input.[t.pos] in
    let peek_char () =
      if t.pos + 1 < String.length t.input then Some t.input.[t.pos + 1] else None
    in
    match c with
    | '*' ->
      t.pos <- t.pos + 1;
      Star
    | ',' ->
      t.pos <- t.pos + 1;
      Comma
    | '.' when not (match peek_char () with Some d -> is_digit d | None -> false) ->
      t.pos <- t.pos + 1;
      Dot
    | ';' ->
      t.pos <- t.pos + 1;
      Semicolon
    | '=' ->
      t.pos <- t.pos + 1;
      Cmp Ast.Eq
    | '<' -> (
      match peek_char () with
      | Some '=' ->
        t.pos <- t.pos + 2;
        Cmp Ast.Le
      | Some '>' ->
        t.pos <- t.pos + 2;
        Cmp Ast.Ne
      | _ ->
        t.pos <- t.pos + 1;
        Cmp Ast.Lt)
    | '>' -> (
      match peek_char () with
      | Some '=' ->
        t.pos <- t.pos + 2;
        Cmp Ast.Ge
      | _ ->
        t.pos <- t.pos + 1;
        Cmp Ast.Gt)
    | '!' when peek_char () = Some '=' ->
      t.pos <- t.pos + 2;
      Cmp Ast.Ne
    | c when is_ident_start c ->
      let start = t.pos in
      while t.pos < String.length t.input && is_ident_char t.input.[t.pos] do
        t.pos <- t.pos + 1
      done;
      let word = String.sub t.input start (t.pos - start) in
      (match keyword_of (String.lowercase_ascii word) with
      | Some kw -> kw
      | None -> Ident word)
    | c when is_digit c || c = '.' ->
      let start = t.pos in
      let accept pred =
        while t.pos < String.length t.input && pred t.input.[t.pos] do
          t.pos <- t.pos + 1
        done
      in
      accept is_digit;
      if t.pos < String.length t.input && t.input.[t.pos] = '.' then begin
        t.pos <- t.pos + 1;
        accept is_digit
      end;
      if
        t.pos < String.length t.input
        && (t.input.[t.pos] = 'e' || t.input.[t.pos] = 'E')
      then begin
        t.pos <- t.pos + 1;
        if t.pos < String.length t.input && (t.input.[t.pos] = '+' || t.input.[t.pos] = '-')
        then t.pos <- t.pos + 1;
        accept is_digit
      end;
      let text = String.sub t.input start (t.pos - start) in
      (match float_of_string_opt text with
      | Some f -> Number f
      | None -> fail t (Printf.sprintf "malformed number %S" text))
    | c -> fail t (Printf.sprintf "unexpected character %C" c)
  end

let next t =
  match t.lookahead with
  | Some tok ->
    t.lookahead <- None;
    tok
  | None -> lex_token t

let peek t =
  match t.lookahead with
  | Some tok -> tok
  | None ->
    let tok = lex_token t in
    t.lookahead <- Some tok;
    tok

let line t = t.line

let tokenize input =
  let t = of_string input in
  let rec go acc =
    match next t with Eof -> List.rev (Eof :: acc) | tok -> go (tok :: acc)
  in
  go []

let token_to_string = function
  | Select -> "SELECT"
  | From -> "FROM"
  | Where -> "WHERE"
  | And -> "AND"
  | Star -> "'*'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Semicolon -> "';'"
  | Cmp c -> "'" ^ Ast.comparison_to_string c ^ "'"
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number f -> Printf.sprintf "number %g" f
  | Eof -> "end of input"
