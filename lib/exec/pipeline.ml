open Ljqo_catalog
open Ljqo_stats

type base_table = {
  relation : int;
  base_rows : int;
  join_columns : (int * int array) list;
  selection_attrs : float array array;
}

let generate_base query ~rel ~rng =
  let r = Query.relation query rel in
  let base_rows = r.Relation.base_cardinality in
  (* The base relation's join-value domain: the distinct fraction applies
     to the base tuple count here, since selections are executed below
     rather than folded in. *)
  let domain =
    max 1
      (int_of_float
         (Float.round (r.Relation.distinct_fraction *. float_of_int base_rows)))
  in
  let join_columns =
    List.map
      (fun (other, _sel) -> (other, Array.init base_rows (fun _ -> Rng.int rng domain)))
      (Join_graph.neighbors (Query.graph query) rel)
  in
  let selection_attrs =
    List.map
      (fun _ -> Array.init base_rows (fun _ -> Rng.float rng 1.0))
      r.Relation.selection_selectivities
    |> Array.of_list
  in
  { relation = rel; base_rows; join_columns; selection_attrs }

let survivors query t =
  let r = Query.relation query t.relation in
  let selectivities = Array.of_list r.Relation.selection_selectivities in
  let keep row =
    let ok = ref true in
    Array.iteri
      (fun p attr -> if attr.(row) >= selectivities.(p) then ok := false)
      t.selection_attrs;
    !ok
  in
  let rows = ref [] in
  for row = t.base_rows - 1 downto 0 do
    if keep row then rows := row :: !rows
  done;
  !rows

let select query t =
  let rows =
    match survivors query t with
    | [] -> [ 0 ] (* analytical floor of one tuple *)
    | rows -> rows
  in
  let rows = Array.of_list rows in
  let columns =
    List.map
      (fun (other, col) -> (other, Array.map (fun row -> col.(row)) rows))
      t.join_columns
  in
  Relation_data.of_columns ~relation:t.relation ~card:(Array.length rows) ~columns

let selectivity_observed query t =
  float_of_int (List.length (survivors query t)) /. float_of_int t.base_rows

let prepare query ~rng =
  Array.init (Query.n_relations query) (fun rel ->
      let t = generate_base query ~rel ~rng:(Rng.split rng) in
      select query t)
