open Ljqo_core
open Ljqo_catalog

exception Result_too_large of int

type step_stat = {
  inner_relation : int;
  output_rows : int;
  probe_comparisons : int;
}

type result = { rows : int array array; steps : step_stat list; first_card : int }

(* Placed neighbours of relation [r]: the predicates that apply when [r]
   joins the current prefix. *)
let applicable_edges query ~placed r =
  List.filter_map
    (fun (other, _) -> if placed.(other) then Some other else None)
    (Join_graph.neighbors (Query.graph query) r)

(* Does row [row] (tuple indices) match inner tuple [t] of relation [r] on
   every predicate in [edges]? *)
let matches query ~data ~row ~r ~t edges =
  ignore query;
  List.for_all
    (fun k ->
      let outer_col = Relation_data.column data.(k) ~other:r in
      let inner_col = Relation_data.column data.(r) ~other:k in
      outer_col.(row.(k)) = inner_col.(t))
    edges

let check_inputs query ~data plan =
  let n = Query.n_relations query in
  if not (Plan.is_permutation plan) || Array.length plan <> n then
    invalid_arg "Executor: plan is not a permutation of the query";
  if Array.length data <> n then invalid_arg "Executor: data size mismatch";
  Array.iteri
    (fun r d ->
      if Relation_data.relation d <> r then
        invalid_arg "Executor: data must be indexed by relation id")
    data

let run ?(max_rows = 1_000_000) ?on_step query ~data plan =
  check_inputs query ~data plan;
  let n = Query.n_relations query in
  let placed = Array.make n false in
  let first = plan.(0) in
  let rows =
    ref
      (Array.init (Relation_data.cardinality data.(first)) (fun t ->
           let row = Array.make n (-1) in
           row.(first) <- t;
           row))
  in
  placed.(first) <- true;
  let steps = ref [] in
  for i = 1 to n - 1 do
    let r = plan.(i) in
    let inner_card = Relation_data.cardinality data.(r) in
    let edges = applicable_edges query ~placed r in
    let comparisons = ref 0 in
    let out = ref [] in
    let out_count = ref 0 in
    let emit row t =
      let row' = Array.copy row in
      row'.(r) <- t;
      out := row' :: !out;
      incr out_count;
      if !out_count > max_rows then raise (Result_too_large !out_count)
    in
    (match edges with
    | [] ->
      (* Cross product. *)
      Array.iter
        (fun row ->
          for t = 0 to inner_card - 1 do
            emit row t
          done)
        !rows
    | anchor :: others ->
      (* Hash the inner on the anchor predicate's column, probe with the
         outer's anchor value, then verify the remaining predicates. *)
      let inner_anchor = Relation_data.column data.(r) ~other:anchor in
      let outer_anchor = Relation_data.column data.(anchor) ~other:r in
      let table = Hashtbl.create inner_card in
      Array.iteri
        (fun t v ->
          let existing = try Hashtbl.find table v with Not_found -> [] in
          Hashtbl.replace table v (t :: existing))
        inner_anchor;
      Array.iter
        (fun row ->
          let v = outer_anchor.(row.(anchor)) in
          match Hashtbl.find_opt table v with
          | None -> ()
          | Some candidates ->
            List.iter
              (fun t ->
                incr comparisons;
                if matches query ~data ~row ~r ~t others then emit row t)
              candidates)
        !rows);
    placed.(r) <- true;
    rows := Array.of_list (List.rev !out);
    Ljqo_obs.Obs.add Ljqo_obs.Obs.Exec_probe_comparisons !comparisons;
    let stat =
      {
        inner_relation = r;
        output_rows = Array.length !rows;
        probe_comparisons = !comparisons;
      }
    in
    (match on_step with None -> () | Some f -> f stat);
    steps := stat :: !steps
  done;
  let total_probes =
    List.fold_left (fun a s -> a + s.probe_comparisons) 0 !steps
  in
  Ljqo_obs.Obs.trace "exec.plan"
    [
      ("relations", Ljqo_obs.Obs.I n);
      ("rows", Ljqo_obs.Obs.I (Array.length !rows));
      ("probe_comparisons", Ljqo_obs.Obs.I total_probes);
    ];
  {
    rows = !rows;
    steps = List.rev !steps;
    first_card = Relation_data.cardinality data.(first);
  }

let cardinalities result =
  result.first_card :: List.map (fun s -> s.output_rows) result.steps

let nested_loop_oracle ?(max_rows = 1_000_000) query ~data plan =
  check_inputs query ~data plan;
  let n = Query.n_relations query in
  let placed = Array.make n false in
  let first = plan.(0) in
  placed.(first) <- true;
  let rows =
    ref
      (List.init (Relation_data.cardinality data.(first)) (fun t ->
           let row = Array.make n (-1) in
           row.(first) <- t;
           row))
  in
  for i = 1 to n - 1 do
    let r = plan.(i) in
    let inner_card = Relation_data.cardinality data.(r) in
    let edges = applicable_edges query ~placed r in
    let out = ref [] in
    let count = ref 0 in
    List.iter
      (fun row ->
        for t = 0 to inner_card - 1 do
          if matches query ~data ~row ~r ~t edges then begin
            let row' = Array.copy row in
            row'.(r) <- t;
            out := row' :: !out;
            incr count;
            if !count > max_rows then raise (Result_too_large !count)
          end
        done)
      !rows;
    placed.(r) <- true;
    rows := !out
  done;
  List.length !rows
