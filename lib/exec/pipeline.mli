(** The full "push selections down" pipeline, executed for real.

    {!Relation_data.generate} bakes selections into the tuple count
    analytically.  This module instead synthesizes each relation at its
    *base* cardinality — join columns per edge plus one attribute column
    per selection predicate — then executes the selection predicates
    tuple-by-tuple, producing the filtered {!Relation_data.t} the executor
    joins.  The paper's first heuristic ("push selections down as much as
    possible") thus has a runtime realization, and tests can verify that
    executed selectivities match the catalog's analytical model.

    A selection predicate with selectivity [s] is modeled as
    [attr < s] over an attribute uniform on [0, 1). *)

type base_table = {
  relation : int;
  base_rows : int;
  join_columns : (int * int array) list;  (** keyed by edge partner *)
  selection_attrs : float array array;  (** one row-indexed array per
                                            selection predicate *)
}

val generate_base : Ljqo_catalog.Query.t -> rel:int -> rng:Ljqo_stats.Rng.t -> base_table
(** Base-cardinality synthesis; join values uniform on the relation's
    distinct domain. *)

val select : Ljqo_catalog.Query.t -> base_table -> Relation_data.t
(** Execute every selection predicate; surviving tuples keep their join
    columns.  A relation losing all tuples keeps one survivor (mirroring
    the analytical floor of one tuple). *)

val selectivity_observed : Ljqo_catalog.Query.t -> base_table -> float
(** Fraction of base tuples surviving all selections. *)

val prepare : Ljqo_catalog.Query.t -> rng:Ljqo_stats.Rng.t -> Relation_data.t array
(** [generate_base] + [select] for every relation: a drop-in alternative to
    {!Relation_data.generate_all} that actually runs the selections. *)
