(** Left-deep plan execution over synthetic data.

    Executes a valid permutation as the paper's outer linear join tree: the
    running intermediate result is a set of *binding vectors* (the tuple
    index of each already-joined relation), and each step hash-joins it with
    the next base relation on all applicable join predicates.  A step with
    no applicable predicate is a cross product.

    This substrate lets tests check the size estimator against ground truth
    and lets the examples run optimized plans for real.  Result sizes are
    capped ([Result_too_large]) because bad plans can be astronomically
    large — that is the point of the paper. *)

exception Result_too_large of int
(** Carries the row count that exceeded the cap. *)

type step_stat = {
  inner_relation : int;
  output_rows : int;
  probe_comparisons : int;  (** tuple pairs inspected while probing *)
}

type result = {
  rows : int array array;
      (** binding vectors: [rows.(k).(r)] is relation [r]'s tuple index in
          output row [k], or [-1] if [r] is not in the plan prefix *)
  steps : step_stat list;  (** in plan order *)
  first_card : int;  (** cardinality of the first (leftmost) relation *)
}

val run :
  ?max_rows:int ->
  ?on_step:(step_stat -> unit) ->
  Ljqo_catalog.Query.t ->
  data:Relation_data.t array ->
  Ljqo_core.Plan.t ->
  result
(** [max_rows] defaults to 1_000_000.  The plan must be a valid permutation
    of the query's relations and [data] must be indexed by relation id.
    [on_step] is called with each step's statistics as the step completes —
    the only way to recover the completed prefix when a later step raises
    {!Result_too_large} (the feedback layer uses it to keep partial
    per-depth cardinalities).  Each completed step's [probe_comparisons]
    also feeds the [exec.probe_comparisons] obs counter (a no-op when
    observability is off). *)

val cardinalities : result -> int list
(** Intermediate result sizes after each step (starting with the first
    relation's cardinality). *)

val nested_loop_oracle :
  ?max_rows:int ->
  Ljqo_catalog.Query.t ->
  data:Relation_data.t array ->
  Ljqo_core.Plan.t ->
  int
(** Final result cardinality computed by naive nested loops — an independent
    oracle for testing the hash-join executor. *)
