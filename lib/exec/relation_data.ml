open Ljqo_catalog
open Ljqo_stats

type t = {
  relation : int;
  card : int;
  columns : (int * int array) list;  (* keyed by the edge's other endpoint *)
}

let generate query ~rel ~rng =
  let card = max 1 (int_of_float (Float.round (Query.cardinality query rel))) in
  let d = max 1 (int_of_float (Float.round (Query.distinct_values query rel))) in
  let columns =
    List.map
      (fun (other, _sel) -> (other, Array.init card (fun _ -> Rng.int rng d)))
      (Join_graph.neighbors (Query.graph query) rel)
  in
  { relation = rel; card; columns }

let of_columns ~relation ~card ~columns =
  if card < 1 then invalid_arg "Relation_data.of_columns: card < 1";
  List.iter
    (fun (_, col) ->
      if Array.length col <> card then
        invalid_arg "Relation_data.of_columns: ragged columns")
    columns;
  { relation; card; columns }

let generate_all query ~rng =
  Array.init (Query.n_relations query) (fun rel ->
      generate query ~rel ~rng:(Rng.split rng))

let relation t = t.relation

let cardinality t = t.card

let column t ~other = List.assoc other t.columns

let distinct_count t ~other =
  let seen = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace seen v ()) (column t ~other);
  Hashtbl.length seen
