(** Synthetic base-relation data matching catalog statistics.

    Each join predicate [(u, v)] gets its own column pair: relation [u]
    carries a column for the edge with values uniform on [0, D_u - 1], and
    [v] likewise on [0, D_v - 1].  Domains are nested (smaller domains are
    prefixes of larger ones), realizing the containment assumption under
    which [J = 1 / max (D_u, D_v)] is the exact expected selectivity of the
    predicate, and distinct predicates are statistically independent — the
    independence the size estimator assumes.

    Tuples are identified by index; [column] retrieves a tuple's value for a
    given edge. *)

type t

val generate : Ljqo_catalog.Query.t -> rel:int -> rng:Ljqo_stats.Rng.t -> t
(** Tuple count is the effective (post-selection) cardinality, rounded. *)

val of_columns : relation:int -> card:int -> columns:(int * int array) list -> t
(** Build from explicit per-edge columns (each of length [card >= 1]);
    used by {!Pipeline} after executing selections for real.  Raises
    [Invalid_argument] on ragged columns or [card < 1]. *)

val generate_all : Ljqo_catalog.Query.t -> rng:Ljqo_stats.Rng.t -> t array
(** Indexed by relation id. *)

val relation : t -> int

val cardinality : t -> int

val column : t -> other:int -> int array
(** [column data ~other] is the column of values for the edge joining this
    relation with relation [other].  Raises [Not_found] if no such edge. *)

val distinct_count : t -> other:int -> int
(** Distinct values actually present in that column. *)
