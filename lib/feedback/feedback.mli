(** Execution-grounded estimation feedback (ROADMAP item 3).

    Executes optimized plans over synthetic {!Ljqo_exec.Relation_data},
    aligns each step's {e actual} output rows against
    {!Ljqo_cost.Plan_cost.eval}'s {e estimated} intermediate cardinalities,
    and records the disagreement as q-error — [max (est/act, act/est)] —
    into the [feedback.*] obs histograms (per join depth, in
    milli-q-error) and counters.

    The two-phase discipline: {!observe} (run the plan, keep ground truth)
    is parallel-safe and is what {!run_spec} fans out over jobs;
    {!measure} (estimate and compare) goes through the process-wide
    calibration hook and therefore always runs sequentially on the calling
    domain.  All recording is pure observation — atomic counter/histogram
    adds — so feedback totals are bit-identical across job counts, and
    running with instrumentation off changes nothing but the totals'
    absence. *)

type sample = {
  depth : int;  (** join depth ([>= 1]; depth 0 is exact by construction) *)
  edges : int;
      (** join edges inside the placed prefix at this depth — the number of
          [edge_selectivity] applications folded into [est], the
          calibration fit's regressor *)
  est : float;  (** estimated intermediate cardinality *)
  act : float;  (** observed intermediate cardinality *)
  qerror : float;  (** [Plan_cost.qerror ~est ~act] *)
}

type observed = {
  plan : Ljqo_core.Plan.t;
  act_cards : float array;
      (** observed cardinalities, aligned with [Executor.cardinalities]
          (index 0 = the first relation); covers only the completed prefix
          when truncated *)
  truncated_at : int option;
      (** join depth of the step that raised [Result_too_large], if any *)
  result_rows : int option;  (** final result size; [None] when truncated *)
}

type measurement = {
  samples : sample list;  (** depth order, depths [>= 1] *)
  mean_qerror : float;  (** arithmetic mean over [samples]; 1 when empty *)
  cost_ratio : float option;
      (** q-ratio of estimated total cost vs the model re-priced with
          observed cardinalities; [None] for truncated executions *)
  m_truncated_at : int option;  (** copied from the observation *)
}

val qerror : est:float -> act:float -> float
(** {!Ljqo_cost.Plan_cost.qerror}, re-exported. *)

val milli : float -> int
(** The histogram encoding: [q * 1000], truncated ([q = 1] records as
    1000), saturating far above any meaningful q-error. *)

val depth_hist : int -> Ljqo_obs.Obs.hist
(** The per-depth q-error histogram a sample at this join depth records
    into; depths [>= 4] share [Feedback_qerror_d4plus]. *)

val observe :
  ?max_rows:int ->
  Ljqo_catalog.Query.t ->
  data:Ljqo_exec.Relation_data.t array ->
  Ljqo_core.Plan.t ->
  observed
(** Execute the plan and keep per-depth ground truth.  Bumps
    [feedback.plans_executed], and [feedback.result_too_large] when the
    executor's row cap fires — in which case the completed prefix is still
    returned and the batch can continue (truncation never escapes as an
    exception). *)

val measure :
  model:Ljqo_cost.Cost_model.t ->
  Ljqo_catalog.Query.t ->
  data:Ljqo_exec.Relation_data.t array ->
  observed ->
  measurement
(** Estimate (under the currently installed {!Ljqo_cost.Plan_cost}
    calibration, if any) and compare: records one per-depth q-error into
    the [feedback.qerror.d*] histogram family and — for complete
    executions — the cost q-ratio into [feedback.cost_ratio].  Call from
    one domain at a time (it reads the global calibration hook). *)

val execute :
  ?max_rows:int ->
  model:Ljqo_cost.Cost_model.t ->
  Ljqo_catalog.Query.t ->
  data:Ljqo_exec.Relation_data.t array ->
  Ljqo_core.Plan.t ->
  measurement
(** [observe] then [measure]. *)

val cumulative_edges : Ljqo_catalog.Query.t -> Ljqo_core.Plan.t -> int array
(** [cumulative_edges q plan].(i)] is the number of join-graph edges with
    both endpoints inside [plan]'s length-[i+1] prefix; index 0 is 0. *)

(** {1 Workload runs} *)

type run = { n_joins : int; rep : int; measurement : measurement }

val run_spec :
  ?jobs:int ->
  ?max_rows:int ->
  ?sel_factor:float ->
  model:Ljqo_cost.Cost_model.t ->
  method_:Ljqo_core.Methods.t ->
  t_factor:float ->
  ns:int list ->
  per_n:int ->
  seed:int ->
  Ljqo_querygen.Benchmark.spec ->
  run list
(** One benchmark variation end to end: for each [n] in [ns] and each of
    [per_n] replicates, generate a query from [spec], optimize it with
    [method_] under the paper's [t_factor * n^2] tick budget, generate
    matching relation data, execute the optimized plan, and measure.  Every
    stream seed derives from [(seed, n, rep)] — never from scheduling — and
    optimization always runs {e uncalibrated}; [sel_factor] (if given) is
    installed only around the sequential measurement phase, so before/after
    calibration comparisons score the {e same} plans.  [jobs] parallelizes
    the observation phase and is a pure speed knob.  Raises
    [Invalid_argument] on an empty or non-positive grid. *)

(** {1 Aggregation} *)

module Summary : sig
  type depth_stat = {
    label : string;  (** ["depth 1"] .. ["depth 4+"] *)
    count : int;
    p50 : float;
    p95 : float;
    worst : float;
  }

  type t = {
    plans : int;
    truncated : int;
    n_samples : int;
    mean : float;  (** arithmetic mean q-error over all samples *)
    depths : depth_stat list;  (** non-empty bands only, in depth order *)
  }

  val quantile : float array -> float -> float
  (** Nearest-rank quantile of a sorted array; NaN when empty. *)

  val of_runs : run list -> t
end
