(* Per-catalog calibration of the selectivity model, fitted from executed
   plans.

   Model: the estimator's error compounds per applied join predicate — at
   depth d the estimate has folded in x_d edge selectivities, so a single
   per-edge multiplicative correction c gives log est'(d) ~ log est(d) +
   x_d log c.  Fitting log (act/est) against x_d through the origin by
   least squares therefore yields log c = sum(x y) / sum(x^2), the exact
   minimizer of the squared log-q residual on the training samples — which
   is why applying the fitted factor can only improve the mean log error
   on the data it was fitted to.

   The file format follows the checkpoint-v2 discipline of
   lib/learn/model.ml: a magic line, then sealed lines (payload + MD5),
   floats as IEEE-754 bit patterns in bare hex, a header declaring the
   entry count, trailing newline required — a load sees exactly the
   declared shape or a line-precise error. *)

type t = { entries : (string * float) list }  (* spec name -> sel_factor *)

(* Guard rail on fitted factors: a correction outside [1e-3, 1e3] means the
   fit chased a degenerate sample set; estimates that wrong are an
   estimator bug, not a calibration target. *)
let factor_floor = 1e-3

let factor_ceiling = 1e3

let clamp_factor f = Float.max factor_floor (Float.min factor_ceiling f)

let fit_samples samples =
  let sxx = ref 0.0 and sxy = ref 0.0 in
  List.iter
    (fun (s : Feedback.sample) ->
      if s.edges > 0 && s.est > 0.0 && s.act > 0.0 then begin
        let x = float_of_int s.edges in
        let y = log (s.act /. s.est) in
        sxx := !sxx +. (x *. x);
        sxy := !sxy +. (x *. y)
      end)
    samples;
  if !sxx > 0.0 then Some (clamp_factor (exp (!sxy /. !sxx))) else None

let fit_runs runs =
  fit_samples
    (List.concat_map (fun (r : Feedback.run) -> r.measurement.samples) runs)

let factor t name = List.assoc_opt name t.entries

(* ------------------------------------------------------------------ *)
(* Serialization (checkpoint-strict, versioned).                       *)

let magic = "# ljqo-feedback-calibration v1"

let float_to_hex v = Printf.sprintf "%Lx" (Int64.bits_of_float v)

let canonical_nat s =
  let n = String.length s in
  if n = 0 || n > 18 then None
  else if n > 1 && s.[0] = '0' then None
  else begin
    let ok = ref true in
    String.iter (fun c -> if c < '0' || c > '9' then ok := false) s;
    if !ok then int_of_string_opt s else None
  end

let float_of_hex s =
  let n = String.length s in
  if n = 0 || n > 16 then None
  else if n > 1 && s.[0] = '0' then None
  else begin
    let ok = ref true in
    String.iter
      (fun c ->
        if not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) then
          ok := false)
      s;
    if !ok then
      match Int64.of_string_opt ("0x" ^ s) with
      | Some bits -> Some (Int64.float_of_bits bits)
      | None -> None
    else None
  end

let checksum payload = Digest.to_hex (Digest.string payload)

let sealed payload = payload ^ " " ^ checksum payload ^ "\n"

(* Catalog names are single tokens (benchmark spec names); a space would
   shift every token after it and break the seal anyway, but refuse early
   with a clear error. *)
let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       s

let to_string t =
  List.iter
    (fun (name, _) ->
      if not (valid_name name) then
        invalid_arg
          (Printf.sprintf "Calibration.to_string: bad catalog name %S" name))
    t.entries;
  let b = Buffer.create 512 in
  Buffer.add_string b (magic ^ "\n");
  Buffer.add_string b (sealed (Printf.sprintf "H %d" (List.length t.entries)));
  List.iter
    (fun (name, f) ->
      Buffer.add_string b
        (sealed (Printf.sprintf "C %s %s" name (float_to_hex f))))
    t.entries;
  Buffer.contents b

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let unseal line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let payload = String.sub line 0 i in
    let digest = String.sub line (i + 1) (String.length line - i - 1) in
    if String.length digest = 32 && String.equal digest (checksum payload)
    then Some (String.split_on_char ' ' payload)
    else None

let parse_header line =
  match unseal line with
  | Some [ "H"; n_s ] -> canonical_nat n_s
  | _ -> None

let parse_entry line =
  match unseal line with
  | Some [ "C"; name; f_s ] when valid_name name -> (
    match float_of_hex f_s with
    | Some f when Float.is_finite f && f >= factor_floor && f <= factor_ceiling
      ->
      Some (name, f)
    | _ -> None)
  | _ -> None

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let len = String.length s in
  if len = 0 || s.[len - 1] <> '\n' then err "missing trailing newline"
  else
    match String.split_on_char '\n' (String.sub s 0 (len - 1)) with
    | magic_line :: header :: entry_lines when String.equal magic_line magic
      -> (
      match parse_header header with
      | None -> err "line 2: bad header"
      | Some n ->
        if List.length entry_lines <> n then
          err "expected %d entry lines, found %d" n (List.length entry_lines)
        else
          let rec go seen acc lineno = function
            | [] -> Ok { entries = List.rev acc }
            | line :: tl -> (
              match parse_entry line with
              | Some (name, f) when not (List.mem name seen) ->
                go (name :: seen) ((name, f) :: acc) (lineno + 1) tl
              | Some (name, _) -> err "line %d: duplicate catalog %s" lineno name
              | None -> err "line %d: bad entry line" lineno)
          in
          go [] [] 3 entry_lines)
    | _ -> err "line 1: bad magic or truncated file"

let load ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        match of_string s with
        | Ok t -> Ok t
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
