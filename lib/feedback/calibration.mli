(** Per-catalog least-squares calibration of the selectivity model.

    The estimator's error compounds once per applied join predicate, so a
    single multiplicative per-edge correction factor [c] models the bias:
    at a depth whose estimate folded in [x] edge selectivities,
    [log est' = log est + x log c].  {!fit_runs} solves the through-origin
    least squares of [log (act/est)] against [x] — [log c = Σxy / Σx²] —
    which by construction minimizes the squared log-q-error on its
    training samples.  The fitted factor plugs into
    {!Ljqo_cost.Plan_cost.set_calibration}.

    Files are checkpoint-strict and versioned, in the style of
    [lib/learn/model.ml] (see DESIGN.md for the format spec): magic line,
    MD5-sealed payload lines, floats as IEEE-754 bit patterns, all-or-
    nothing loading with line-precise errors. *)

type t = { entries : (string * float) list }
(** Catalog (benchmark-variation) name -> per-edge selectivity correction
    factor, in file order. *)

val factor_floor : float
(** [1e-3] — fitted factors are clamped into [[factor_floor,
    factor_ceiling]]; anything outside means a degenerate fit. *)

val factor_ceiling : float
(** [1e3]. *)

val fit_samples : Feedback.sample list -> float option
(** The through-origin least-squares factor over samples with at least one
    applied edge and positive cardinalities; [None] when no sample
    qualifies. *)

val fit_runs : Feedback.run list -> float option
(** {!fit_samples} over every sample of every run. *)

val factor : t -> string -> float option

val to_string : t -> string
(** Raises [Invalid_argument] on a catalog name that is not a single
    [[A-Za-z0-9._-]] token. *)

val of_string : string -> (t, string) result
(** All-or-nothing parse with line-precise errors: bad magic, bad seal,
    wrong entry count, duplicate catalog, out-of-range factor and missing
    trailing newline are all refused. *)

val save : path:string -> t -> unit

val load : path:string -> (t, string) result
