(* Execution-grounded estimation feedback.

   The pipeline has two halves with deliberately different parallelism
   rules:

   - [observe] runs a plan through the hash-join executor and keeps the
     ground truth (per-depth output rows, truncation point).  It depends
     only on (query, data, plan), so a workload's observations run in
     parallel; the obs counters it bumps are atomic adds and hence
     bit-identical across job counts.

   - [measure] compares the observation against [Plan_cost.eval]'s
     estimated intermediate cardinalities and records q-errors into the
     obs histograms.  Estimation goes through the global calibration hook
     ([Plan_cost.set_calibration]), a process-wide ref — so [run_spec]
     performs all measurement sequentially on the calling domain, after
     the parallel observation phase, never flipping the hook from inside
     workers.

   Q-error sample alignment: [Executor.cardinalities] element [i] and
   [Plan_cost.eval(...).cards.(i)] both describe the intermediate after
   position [i] (index 0 = the first relation alone).  Base cardinalities
   are exact by construction of [Relation_data] (up to integer rounding),
   so depth 0 carries no information and samples start at depth 1: every
   recorded q-error is estimation error of the selectivity model, which is
   exactly what calibration can correct. *)

open Ljqo_catalog
module Obs = Ljqo_obs.Obs
module Plan_cost = Ljqo_cost.Plan_cost
module Executor = Ljqo_exec.Executor
module Relation_data = Ljqo_exec.Relation_data
module Benchmark = Ljqo_querygen.Benchmark

type sample = {
  depth : int;  (* join depth, >= 1 *)
  edges : int;  (* join edges inside the placed prefix at this depth *)
  est : float;
  act : float;
  qerror : float;
}

type observed = {
  plan : Ljqo_core.Plan.t;
  act_cards : float array;  (* index 0 = first relation; short when truncated *)
  truncated_at : int option;  (* join depth of the step that overflowed *)
  result_rows : int option;  (* None when truncated *)
}

type measurement = {
  samples : sample list;  (* in depth order, depths >= 1 *)
  mean_qerror : float;  (* 1.0 when no samples *)
  cost_ratio : float option;  (* None for truncated executions *)
  m_truncated_at : int option;
}

let qerror = Plan_cost.qerror

(* Histogram values are milli-q-errors: q = 1 records as 1000, so three
   log-bucket decades of resolution sit below q = 10 where estimator
   quality actually differentiates. *)
let milli_cap = 1e15

let milli q = int_of_float (Float.min (q *. 1000.0) milli_cap)

let depth_hist d =
  if d <= 1 then Obs.Feedback_qerror_d1
  else if d = 2 then Obs.Feedback_qerror_d2
  else if d = 3 then Obs.Feedback_qerror_d3
  else Obs.Feedback_qerror_d4plus

let observe ?max_rows query ~data plan =
  Obs.bump Obs.Feedback_plans_executed;
  let acts = ref [ float_of_int (Relation_data.cardinality data.(plan.(0))) ] in
  let on_step (s : Executor.step_stat) =
    acts := float_of_int s.output_rows :: !acts
  in
  match Executor.run ?max_rows ~on_step query ~data plan with
  | result ->
    {
      plan;
      act_cards = Array.of_list (List.rev !acts);
      truncated_at = None;
      result_rows = Some (Array.length result.rows);
    }
  | exception Executor.Result_too_large _ ->
    (* The completed prefix is what [on_step] saw; the overflowing step is
       the next depth.  Count it here — the batch goes on. *)
    Obs.bump Obs.Feedback_result_too_large;
    let act_cards = Array.of_list (List.rev !acts) in
    {
      plan;
      act_cards;
      truncated_at = Some (Array.length act_cards);
      result_rows = None;
    }

(* Cumulative join-edge count inside the placed prefix, per depth: how many
   times [edge_selectivity] was folded into the estimate at that depth —
   the regressor the calibration fit uses. *)
let cumulative_edges query plan =
  let n = Array.length plan in
  let graph = Query.graph query in
  let placed = Array.make (Query.n_relations query) false in
  placed.(plan.(0)) <- true;
  let edges = Array.make n 0 in
  let total = ref 0 in
  for i = 1 to n - 1 do
    let r = plan.(i) in
    List.iter
      (fun (k, _) -> if placed.(k) then incr total)
      (Join_graph.neighbors graph r);
    placed.(r) <- true;
    edges.(i) <- !total
  done;
  edges

let measure ~model query ~data obs =
  let est = Plan_cost.eval model query obs.plan in
  let edges = cumulative_edges query obs.plan in
  let n_act = Array.length obs.act_cards in
  let depths = min n_act (Array.length est.cards) in
  let samples = ref [] in
  let sum = ref 0.0 in
  for d = depths - 1 downto 1 do
    let e = est.cards.(d) and a = obs.act_cards.(d) in
    let q = qerror ~est:e ~act:a in
    Obs.hist_record (depth_hist d) (milli q);
    sum := !sum +. q;
    samples := { depth = d; edges = edges.(d); est = e; act = a; qerror = q } :: !samples
  done;
  let cost_ratio =
    match obs.truncated_at with
    | Some _ -> None
    | None ->
      (* Actual-cost proxy: the same model's join-cost formula re-priced
         with the observed cardinalities, so the ratio isolates estimation
         error from cost-formula choice. *)
      let module M = (val model : Ljqo_cost.Cost_model.S) in
      let actual = ref 0.0 in
      for i = 1 to depths - 1 do
        let r = obs.plan.(i) in
        let input : Ljqo_cost.Cost_model.join_input =
          {
            outer_card = obs.act_cards.(i - 1);
            inner_card = float_of_int (Relation_data.cardinality data.(r));
            inner_distinct = Query.distinct_values query r;
            output_card = Plan_cost.clamp_card obs.act_cards.(i);
            is_first = i = 1;
            is_cross = edges.(i) = (if i = 1 then 0 else edges.(i - 1));
          }
        in
        actual := !actual +. Plan_cost.clamp_cost (M.join_cost input)
      done;
      let ratio = qerror ~est:est.total ~act:!actual in
      Obs.hist_record Obs.Feedback_cost_ratio (milli ratio);
      Some ratio
  in
  let count = depths - 1 in
  {
    samples = !samples;
    mean_qerror = (if count <= 0 then 1.0 else !sum /. float_of_int count);
    cost_ratio;
    m_truncated_at = obs.truncated_at;
  }

let execute ?max_rows ~model query ~data plan =
  measure ~model query ~data (observe ?max_rows query ~data plan)

(* ------------------------------------------------------------------ *)
(* Workload runs: one benchmark variation end to end.                  *)

type run = { n_joins : int; rep : int; measurement : measurement }

(* Deterministic per-query stream seeds: FNV-1a-style mixing of the base
   seed with the grid coordinates and a stream tag, so query generation,
   optimization and data generation never share a stream and reordering the
   grid cannot alias two streams. *)
let mix seed ~n ~rep ~stream =
  let h = ref (0x0bf29ce484222325 lxor seed) in
  let fold k =
    h := !h lxor k;
    h := !h * 0x100000001b3
  in
  fold n;
  fold rep;
  fold stream;
  !h land max_int

let run_spec ?jobs ?max_rows ?sel_factor ~model ~method_ ~t_factor ~ns ~per_n
    ~seed spec =
  if per_n < 1 then invalid_arg "Feedback.run_spec: per_n must be >= 1";
  List.iter
    (fun n -> if n < 1 then invalid_arg "Feedback.run_spec: ns must be >= 1")
    ns;
  let items =
    Array.of_list
      (List.concat_map (fun n -> List.init per_n (fun rep -> (n, rep))) ns)
  in
  (* Parallel phase: optimize (uncalibrated) and execute.  Pure per item;
     obs bumps are atomic. *)
  let observe_one (n, rep) =
    let qrng = Ljqo_stats.Rng.create (mix seed ~n ~rep ~stream:1) in
    let query = Benchmark.generate_query spec ~n_joins:n ~rng:qrng in
    let ticks = Ljqo_core.Budget.ticks_for_limit ~t_factor ~n_joins:n () in
    let r =
      Ljqo_core.Optimizer.optimize ~method_ ~model ~ticks
        ~seed:(mix seed ~n ~rep ~stream:2)
        query
    in
    let data =
      Relation_data.generate_all query
        ~rng:(Ljqo_stats.Rng.create (mix seed ~n ~rep ~stream:3))
    in
    (query, data, observe ?max_rows query ~data r.plan)
  in
  let observations =
    Ljqo_stats.Parallel.map_array ?jobs observe_one items
  in
  (* Sequential phase: estimation under the requested calibration.  The
     global hook is flipped once, on this domain, around the whole loop. *)
  let prev = Plan_cost.calibration () in
  Plan_cost.set_calibration
    (Option.map (fun f -> { Plan_cost.sel_factor = f }) sel_factor);
  Fun.protect
    ~finally:(fun () -> Plan_cost.set_calibration prev)
    (fun () ->
      Array.to_list
        (Array.mapi
           (fun i (query, data, obs) ->
             let n, rep = items.(i) in
             { n_joins = n; rep; measurement = measure ~model query ~data obs })
           observations))

(* ------------------------------------------------------------------ *)
(* Aggregation for reports.                                            *)

module Summary = struct
  type depth_stat = {
    label : string;
    count : int;
    p50 : float;
    p95 : float;
    worst : float;
  }

  type t = {
    plans : int;
    truncated : int;
    n_samples : int;
    mean : float;
    depths : depth_stat list;
  }

  (* Nearest-rank quantile on a sorted array. *)
  let quantile sorted q =
    let n = Array.length sorted in
    if n = 0 then Float.nan
    else
      let k = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) k))

  let band d = if d <= 1 then 0 else if d = 2 then 1 else if d = 3 then 2 else 3

  let band_labels = [| "depth 1"; "depth 2"; "depth 3"; "depth 4+" |]

  let of_runs runs =
    let bands = Array.make 4 [] in
    let n_samples = ref 0 in
    let sum = ref 0.0 in
    let truncated = ref 0 in
    List.iter
      (fun r ->
        if r.measurement.m_truncated_at <> None then incr truncated;
        List.iter
          (fun s ->
            incr n_samples;
            sum := !sum +. s.qerror;
            bands.(band s.depth) <- s.qerror :: bands.(band s.depth))
          r.measurement.samples)
      runs;
    let depths =
      List.filter_map
        (fun b ->
          match bands.(b) with
          | [] -> None
          | vals ->
            let sorted = Array.of_list vals in
            Array.sort compare sorted;
            Some
              {
                label = band_labels.(b);
                count = Array.length sorted;
                p50 = quantile sorted 0.5;
                p95 = quantile sorted 0.95;
                worst = sorted.(Array.length sorted - 1);
              })
        [ 0; 1; 2; 3 ]
    in
    {
      plans = List.length runs;
      truncated = !truncated;
      n_samples = !n_samples;
      mean =
        (if !n_samples = 0 then 1.0 else !sum /. float_of_int !n_samples);
      depths;
    }
end
