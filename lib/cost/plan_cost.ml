open Ljqo_catalog

type eval = {
  cards : float array;
  step_costs : float array;
  total : float;
  est_steps : int;
}

(* Execution-feedback calibration.  When installed, every effective edge
   selectivity is multiplied by the per-edge correction factor fitted from
   observed cardinalities (see Ljqo_feedback.Calibration).  [None] is the
   default and performs no float operation at all, so uncalibrated costing
   stays bit-identical to the pre-hook code.  Install only between runs,
   from the main domain — same discipline as [Optimizer.set_adaptive_router]. *)
type calibration = { sel_factor : float }

let calibration_ref : calibration option ref = ref None

let set_calibration c = calibration_ref := c

let calibration () = !calibration_ref

(* Effective selectivity of the edge (k, r) when the intermediate result
   holding k currently has [outer_card] tuples: the stored selectivity
   [1 / max (D_k, D_r)] is rescaled by clamping [D_k] to the tuples actually
   present, [min (D_k, outer_card)] — a small intermediate cannot carry more
   join values than tuples.  This makes selectivity (and hence cost)
   order-dependent, as in real systems. *)
let edge_selectivity query ~outer_card ~k ~r s_base =
  let dk = Query.distinct_values query k in
  let dr = Query.distinct_values query r in
  let clamped = Float.max (Float.min dk outer_card) 1.0 in
  let s = s_base *. Float.max dk dr /. Float.max clamped dr in
  let s = match !calibration_ref with None -> s | Some c -> s *. c.sel_factor in
  Float.min 1.0 s

let selectivity_before query ~perm ~pos ~outer_card i =
  let r = perm.(i) in
  List.fold_left
    (fun acc (k, s) ->
      if pos.(k) < i then acc *. edge_selectivity query ~outer_card ~k ~r s
      else acc)
    1.0
    (Join_graph.neighbors (Query.graph query) r)

let joins_before query ~perm ~pos i =
  let r = perm.(i) in
  List.exists
    (fun (other, _) -> pos.(other) < i)
    (Join_graph.neighbors (Query.graph query) r)

(* Bitset kernels: the placed prefix as a mask instead of a
   [pos] array.  [selectivity_prefix] visits neighbors in the same ascending
   order as [selectivity_before], so the float products are bit-identical;
   [joins_prefix] is two word-ANDs where the list version scans. *)

let joins_prefix query ~prefix r =
  Bitset.intersects (Join_graph.neighbor_mask (Query.graph query) r) prefix

let selectivity_prefix query ~prefix ~outer_card r =
  let graph = Query.graph query in
  let ids = Join_graph.neighbor_ids graph r in
  let sels = Join_graph.neighbor_sels graph r in
  let acc = ref 1.0 in
  for j = 0 to Array.length ids - 1 do
    let k = Array.unsafe_get ids j in
    if Bitset.mem k prefix then
      acc := !acc *. edge_selectivity query ~outer_card ~k ~r (Array.unsafe_get sels j)
  done;
  !acc

(* Ceiling on estimated cardinalities.  Terrible plans produce sizes beyond
   any float's useful range; capping keeps every cost finite so that
   incremental cost deltas never become [inf -. inf] (NaN), while leaving
   such plans astronomically expensive (they are coerced to the outlier
   threshold by the experiment methodology anyway). *)
let card_ceiling = 1e120

(* Ceiling on per-step costs, for the same reason — and a containment wall
   against misbehaving cost models (overflow to infinity, NaN, negative
   values).  A NaN or infinite step cost is pessimized to the ceiling, a
   negative one floored at zero, so every search method always sees finite,
   totally ordered costs and terminates with a valid plan even under fault
   injection (see Chaos). *)
let cost_ceiling = 1e150

let clamp_card c =
  if Float.is_nan c then 1.0 else Float.min card_ceiling (Float.max 1.0 c)

let clamp_cost c =
  if Float.is_nan c then cost_ceiling else Float.min cost_ceiling (Float.max 0.0 c)

let step_cost (model : Cost_model.t) query ~perm ~pos ~i ~outer_card =
  let module M = (val model : Cost_model.S) in
  let r = perm.(i) in
  let inner_card = Query.cardinality query r in
  let sel = selectivity_before query ~perm ~pos ~outer_card i in
  let is_cross = not (joins_before query ~perm ~pos i) in
  let output_card = clamp_card (outer_card *. inner_card *. sel) in
  let input : Cost_model.join_input =
    {
      outer_card;
      inner_card;
      inner_distinct = Query.distinct_values query r;
      output_card;
      is_first = i = 1;
      is_cross;
    }
  in
  (clamp_cost (M.join_cost input), output_card)

(* Word-array twins of [joins_prefix]/[selectivity_prefix]/[step_cost_prefix]
   for graphs wider than the two inline bitset words: the placed prefix is a
   caller-owned scratch array of 63-bit words (id [i] at bit [i mod 63] of
   word [i / 63], the [Bitset.words_needed] layout), so the wide hot loops
   never box a prefix [Bitset.t] per step.  Same ascending neighbor-visit
   order, hence bit-identical float products. *)

let joins_words query ~words r =
  Bitset.intersects_words (Join_graph.neighbor_mask (Query.graph query) r) words

let selectivity_words query ~words ~outer_card r =
  let graph = Query.graph query in
  let ids = Join_graph.neighbor_ids graph r in
  let sels = Join_graph.neighbor_sels graph r in
  let acc = ref 1.0 in
  for j = 0 to Array.length ids - 1 do
    let k = Array.unsafe_get ids j in
    if Array.unsafe_get words (k / 63) land (1 lsl (k mod 63)) <> 0 then
      acc := !acc *. edge_selectivity query ~outer_card ~k ~r (Array.unsafe_get sels j)
  done;
  !acc

let step_cost_prefix (model : Cost_model.t) query ~prefix ~r ~is_first ~outer_card =
  let module M = (val model : Cost_model.S) in
  let inner_card = Query.cardinality query r in
  let sel = selectivity_prefix query ~prefix ~outer_card r in
  let is_cross = not (joins_prefix query ~prefix r) in
  let output_card = clamp_card (outer_card *. inner_card *. sel) in
  let input : Cost_model.join_input =
    {
      outer_card;
      inner_card;
      inner_distinct = Query.distinct_values query r;
      output_card;
      is_first;
      is_cross;
    }
  in
  (clamp_cost (M.join_cost input), output_card)

let step_cost_words (model : Cost_model.t) query ~words ~r ~is_first ~outer_card =
  let module M = (val model : Cost_model.S) in
  let inner_card = Query.cardinality query r in
  let sel = selectivity_words query ~words ~outer_card r in
  let is_cross = not (joins_words query ~words r) in
  let output_card = clamp_card (outer_card *. inner_card *. sel) in
  let input : Cost_model.join_input =
    {
      outer_card;
      inner_card;
      inner_distinct = Query.distinct_values query r;
      output_card;
      is_first;
      is_cross;
    }
  in
  (clamp_cost (M.join_cost input), output_card)

(* Allocation-free form of [step_cost_prefix] for the fused neighbor kernel:
   the placed prefix arrives as two raw bitset words and the result leaves
   through a caller-owned 2-slot float array (flat, unboxed), so the hot loop
   pays no [Bitset.t] box, no result tuple and no float boxing per step.  The
   cost-model module is unpacked once at [make] instead of once per step.
   Every float operation happens in the same order as [step_cost_prefix], so
   the two are bit-identical (enforced by qcheck in test_neighborhood.ml). *)
module Stepper = struct
  type t = {
    query : Query.t;
    graph : Join_graph.t;
    join_cost : Cost_model.join_input -> float;
  }

  let make (model : Cost_model.t) query =
    let module M = (val model : Cost_model.S) in
    { query; graph = Query.graph query; join_cost = M.join_cost }

  let selectivity_inline t ~w0 ~w1 ~outer_card r =
    let ids = Join_graph.neighbor_ids t.graph r in
    let sels = Join_graph.neighbor_sels t.graph r in
    let acc = ref 1.0 in
    for j = 0 to Array.length ids - 1 do
      let k = Array.unsafe_get ids j in
      let present =
        if k < 63 then w0 land (1 lsl k) <> 0 else w1 land (1 lsl (k - 63)) <> 0
      in
      if present then
        acc :=
          !acc *. edge_selectivity t.query ~outer_card ~k ~r (Array.unsafe_get sels j)
    done;
    !acc

  let step t ~w0 ~w1 ~r ~is_first ~outer_card ~into =
    let inner_card = Query.cardinality t.query r in
    let sel = selectivity_inline t ~w0 ~w1 ~outer_card r in
    let m = Join_graph.neighbor_mask t.graph r in
    let is_cross = (m.Bitset.w0 land w0) lor (m.Bitset.w1 land w1) = 0 in
    let output_card = clamp_card (outer_card *. inner_card *. sel) in
    let input : Cost_model.join_input =
      {
        outer_card;
        inner_card;
        inner_distinct = Query.distinct_values t.query r;
        output_card;
        is_first;
        is_cross;
      }
    in
    Array.unsafe_set into 0 (clamp_cost (t.join_cost input));
    Array.unsafe_set into 1 output_card

  (* Wide twin of [step]: the prefix as a scratch word array instead of two
     inline words.  Same float operations in the same order as
     [step_cost_words]. *)
  let step_words t ~words ~r ~is_first ~outer_card ~into =
    let inner_card = Query.cardinality t.query r in
    let sel =
      let ids = Join_graph.neighbor_ids t.graph r in
      let sels = Join_graph.neighbor_sels t.graph r in
      let acc = ref 1.0 in
      for j = 0 to Array.length ids - 1 do
        let k = Array.unsafe_get ids j in
        if Array.unsafe_get words (k / 63) land (1 lsl (k mod 63)) <> 0 then
          acc :=
            !acc *. edge_selectivity t.query ~outer_card ~k ~r (Array.unsafe_get sels j)
      done;
      !acc
    in
    let m = Join_graph.neighbor_mask t.graph r in
    let is_cross = not (Bitset.intersects_words m words) in
    let output_card = clamp_card (outer_card *. inner_card *. sel) in
    let input : Cost_model.join_input =
      {
        outer_card;
        inner_card;
        inner_distinct = Query.distinct_values t.query r;
        output_card;
        is_first;
        is_cross;
      }
    in
    Array.unsafe_set into 0 (clamp_cost (t.join_cost input));
    Array.unsafe_set into 1 output_card
end

let eval model query perm =
  let n = Array.length perm in
  if n = 0 then invalid_arg "Plan_cost.eval: empty permutation";
  let cards = Array.make n 0.0 in
  let step_costs = Array.make n 0.0 in
  cards.(0) <- Query.cardinality query perm.(0);
  let total = ref 0.0 in
  (* One code path at every width: neighbor masks always exist, and the
     prefix bitset grows its tail only past 126 relations (where this cold
     entry point's per-step allocation is immaterial). *)
  let prefix = ref (Bitset.singleton perm.(0)) in
  for i = 1 to n - 1 do
    let cost, out =
      step_cost_prefix model query ~prefix:!prefix ~r:perm.(i) ~is_first:(i = 1)
        ~outer_card:cards.(i - 1)
    in
    cards.(i) <- out;
    step_costs.(i) <- cost;
    total := !total +. cost;
    prefix := Bitset.add perm.(i) !prefix
  done;
  { cards; step_costs; total = !total; est_steps = n }

let total model query perm = (eval model query perm).total

(* The standard estimation-error factor (Moerkotte et al.): symmetric in
   est/act and always >= 1.  Both sides are floored at one tuple so an empty
   actual result (act = 0) yields a finite factor instead of infinity. *)
let qerror ~est ~act =
  let e = Float.max est 1.0 in
  let a = Float.max act 1.0 in
  Float.max (e /. a) (a /. e)

let reference_final_cardinality query =
  let n = Query.n_relations query in
  let card = ref 1.0 in
  for i = 0 to n - 1 do
    card := !card *. Query.cardinality query i
  done;
  let sel =
    Join_graph.fold_edges
      (fun e acc -> acc *. e.selectivity)
      (Query.graph query) 1.0
  in
  Float.max 1.0 (!card *. sel)

let lower_bound (model : Cost_model.t) query =
  let module M = (val model : Cost_model.S) in
  let n = Query.n_relations query in
  let scans = ref 0.0 in
  for i = 0 to n - 1 do
    scans := !scans +. clamp_cost (M.scan_cost ~card:(Query.cardinality query i))
  done;
  !scans
