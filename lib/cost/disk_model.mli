(** Disk-based hash-join cost model, after Bratbergsengen [Bra84].

    Relations and intermediate results live on disk in pages.  Each join is a
    (Grace-style) hash join:

    - if the inner relation's pages fit in the memory buffer, one read pass
      over inner and outer suffices;
    - otherwise both operands are first partitioned to disk (one extra write
      and read of each), giving the classical factor-3 I/O blowup;
    - the join result is an intermediate relation that must be written out
      (and is read back as the next join's outer operand, charged there).

    The outer operand of the first join is a base relation and is charged its
    read in that join; later outers are the materialized previous results.  A
    small CPU term keeps plans with identical I/O ordered sensibly. *)

type params = {
  page_bytes : int;  (** page size in bytes *)
  tuple_bytes : int;  (** average tuple width *)
  memory_pages : int;  (** buffer pool pages available to a join *)
  io_cost : float;  (** cost of one page I/O *)
  cpu_per_tuple : float;  (** CPU charge per tuple touched *)
}

val default_params : params

val pages : params -> float -> float
(** [pages p card] is the page count of a relation with [card] tuples,
    at least 1. *)

val make : params -> Cost_model.t

include Cost_model.S
(** The model with [default_params]. *)
