(** Deterministic fault injection over any cost model.

    [wrap ~seed model] prices most calls exactly like [model], but a seeded,
    input-determined fraction of calls returns garbage: NaN, [+inf], zero,
    or a cost computed from overflowed cardinalities.  Because each fault is
    a pure function of the seed and the call's inputs — never of call order
    — chaos runs are reproducible, parallelism-independent, and safe to
    checkpoint.

    This is the adversary that the overflow-safe clamping in
    {!Plan_cost.clamp_cost} / {!Plan_cost.clamp_card} is proven against:
    the chaos test suite runs all nine methods under a wrapped model and
    requires every run to terminate with a valid plan. *)

type fault = Nan_cost | Inf_cost | Zero_cost | Overflow_card

val all_faults : fault list

val fault_name : fault -> string

val default_rate : float
(** 0.05 — one call in twenty is faulted. *)

val wrap : ?rate:float -> seed:int -> Cost_model.t -> Cost_model.t
(** [rate] is the per-call fault probability in [[0, 1]]; faults are spread
    uniformly over {!all_faults}. *)

exception Injected of string
(** Raised by {!wrap_raising}'s faulted calls; the payload is the
    {!fault_name} drawn. *)

val wrap_raising : ?rate:float -> seed:int -> Cost_model.t -> Cost_model.t
(** Like {!wrap}, but a faulted join costing {e raises} {!Injected} instead
    of returning garbage — the crash-mid-request adversary for the serving
    path's per-request guard.  Deterministic in the same sense as {!wrap},
    and salted differently, so under one seed the two modes fault
    independent call subsets.  Scan and output costings are passed through
    unfaulted. *)

val decide : seed:int -> rate:float -> float list -> fault option
(** The underlying seeded decision function, exposed for tests: hashes the
    given floats and returns the fault (if any) a call with those inputs
    receives. *)
