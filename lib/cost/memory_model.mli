(** Main-memory hash-join cost model, after [Swa89a].

    The join builds an in-memory hash table on the inner base relation and
    probes it with the outer operand.  CPU cost decomposes into hashing the
    inner ([c_build] per tuple), hashing and probing with the outer ([c_probe]
    per tuple plus comparisons along the expected bucket chain, which is
    [inner_card / inner_distinct] long for a join-column hash), and
    materializing the result ([c_output] per tuple).  This is the same
    functional shape as the validated model of [Swa89a]; the paper's results
    are insensitive to the exact constants (Section 6.2).

    A cross product degenerates to nested loops: every outer tuple meets every
    inner tuple. *)

type params = {
  c_build : float;  (** per inner tuple inserted into the hash table *)
  c_probe : float;  (** per outer tuple hashed into the table *)
  c_compare : float;  (** per tuple comparison while chasing a bucket chain *)
  c_output : float;  (** per result tuple materialized *)
}

val default_params : params

val make : params -> Cost_model.t

include Cost_model.S
(** The model with [default_params]. *)
