type join_input = {
  outer_card : float;
  inner_card : float;
  inner_distinct : float;
  output_card : float;
  is_first : bool;
  is_cross : bool;
}

module type S = sig
  val name : string
  val join_cost : join_input -> float
  val scan_cost : card:float -> float
  val output_cost : card:float -> float
end

type t = (module S)
