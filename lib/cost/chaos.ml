(* Deterministic fault injection for cost models.

   [wrap] turns any cost model into one that occasionally returns garbage —
   NaN, infinity, zero, or a cost computed from overflowed cardinalities —
   to prove that the optimizer pipeline is total under a misbehaving
   estimator (the containment wall is [Plan_cost.clamp_cost] /
   [clamp_card]).

   Faults are a pure function of (seed, call inputs), not of call order:
   the same query costed twice gets the same faults, so chaos runs stay
   reproducible and checkpoint/resume remains bit-identical. *)

type fault = Nan_cost | Inf_cost | Zero_cost | Overflow_card

let all_faults = [ Nan_cost; Inf_cost; Zero_cost; Overflow_card ]

let fault_name = function
  | Nan_cost -> "nan-cost"
  | Inf_cost -> "inf-cost"
  | Zero_cost -> "zero-cost"
  | Overflow_card -> "overflow-card"

(* splitmix64 finalizer: a cheap, well-mixed 64-bit hash. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash_floats ~seed fs =
  List.fold_left
    (fun h f -> mix64 (Int64.logxor h (Int64.bits_of_float f)))
    (mix64 (Int64.of_int seed))
    fs

(* Uniform in [0, 1) from the hash's top 53 bits. *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let fault_of h =
  match Int64.to_int (Int64.logand h 3L) with
  | 0 -> Nan_cost
  | 1 -> Inf_cost
  | 2 -> Zero_cost
  | _ -> Overflow_card

let decide ~seed ~rate fs =
  let h = hash_floats ~seed fs in
  if unit_float h < rate then Some (fault_of (mix64 h)) else None

let default_rate = 0.05

let wrap ?(rate = default_rate) ~seed (model : Cost_model.t) : Cost_model.t =
  let module M = (val model : Cost_model.S) in
  (module struct
    let name = Printf.sprintf "chaos(%s,seed=%d,rate=%g)" M.name seed rate

    let join_cost (input : Cost_model.join_input) =
      let decision =
        decide ~seed ~rate
          [
            1.0;
            input.outer_card;
            input.inner_card;
            input.inner_distinct;
            input.output_card;
            (if input.is_first then 2.0 else 3.0);
            (if input.is_cross then 5.0 else 7.0);
          ]
      in
      match decision with
      | None -> M.join_cost input
      | Some Nan_cost -> Float.nan
      | Some Inf_cost -> Float.infinity
      | Some Zero_cost -> 0.0
      | Some Overflow_card ->
        (* Feed the underlying model cardinalities far past any clamp, as an
           upstream estimator overflow would. *)
        M.join_cost
          {
            input with
            outer_card = input.outer_card *. 1e300;
            output_card = Float.max input.output_card 1e300;
          }

    let scan_cost ~card =
      match decide ~seed ~rate [ 11.0; card ] with
      | None -> M.scan_cost ~card
      | Some Nan_cost -> Float.nan
      | Some Inf_cost -> Float.infinity
      | Some Zero_cost -> 0.0
      | Some Overflow_card -> M.scan_cost ~card:(card *. 1e300)

    let output_cost ~card =
      match decide ~seed ~rate [ 13.0; card ] with
      | None -> M.output_cost ~card
      | Some Nan_cost -> Float.nan
      | Some Inf_cost -> Float.infinity
      | Some Zero_cost -> 0.0
      | Some Overflow_card -> M.output_cost ~card:(card *. 1e300)
  end)

exception Injected of string

(* Same seeded decision machinery, harsher failure mode: instead of garbage
   values, a faulted join costing *raises*.  This models an estimator that
   crashes outright (catalog lookup failure, assertion in a UDF), and is the
   adversary the serving path's per-request guard is proven against: the
   request fails, the worker and its queue survive.  The salt (17.0)
   differs from [wrap]'s call-site salts so the two chaos modes fault
   independent call subsets under one seed. *)
let wrap_raising ?(rate = default_rate) ~seed (model : Cost_model.t) :
    Cost_model.t =
  let module M = (val model : Cost_model.S) in
  (module struct
    let name = Printf.sprintf "chaos-raising(%s,seed=%d,rate=%g)" M.name seed rate

    let join_cost (input : Cost_model.join_input) =
      match
        decide ~seed ~rate
          [
            17.0;
            input.outer_card;
            input.inner_card;
            input.inner_distinct;
            input.output_card;
            (if input.is_first then 2.0 else 3.0);
            (if input.is_cross then 5.0 else 7.0);
          ]
      with
      | None -> M.join_cost input
      | Some f -> raise (Injected (fault_name f))

    let scan_cost ~card = M.scan_cost ~card

    let output_cost ~card = M.output_cost ~card
  end)
