(** The classical order-independent size estimator.

    Intermediate cardinality of a relation set = product of the relations'
    cardinalities times the product of the selectivities of all join edges
    inside the set — no distinct-value clamping.  Under this estimator the
    size (and hence the per-set best cost) depends only on the *set*, which
    is exactly the optimal-substructure property System R's dynamic
    programming needs ({!Ljqo_core.Dp} builds on this module).

    The clamped estimator ({!Plan_cost}) is the library's default; this one
    exists as the DP substrate and as the comparison point for measuring
    what clamping changes. *)

val set_cardinality : Ljqo_catalog.Query.t -> int list -> float
(** Estimated size of the join of a set of relations (1 at minimum, capped
    like {!Plan_cost}). *)

val extend_cardinality :
  Ljqo_catalog.Query.t -> card:float -> members:int list -> int -> float
(** [extend_cardinality q ~card ~members r]: the size after joining
    relation [r] into an intermediate of (raw) size [card] over set
    [members] (only edges between [r] and [members] apply).

    Sizes are propagated as *raw* products, without the one-tuple floor the
    clamped estimator applies per step: flooring mid-plan would make the
    running value depend on where the product dips below one, destroying
    the set-determinism DP needs.  Floors apply only where a size feeds a
    cost formula or is displayed. *)

val step_cost :
  Cost_model.t ->
  Ljqo_catalog.Query.t ->
  outer_card:float ->
  members:int list ->
  int ->
  float * float
(** [(cost, raw_output_card)] of joining relation [r] next, under the given
    cost model; [outer_card] is the raw running product. *)

val raw_extend_mask :
  Ljqo_catalog.Query.t -> raw:float -> mask:Ljqo_catalog.Bitset.t -> int -> float
(** [raw_extend] with the member set as a bitset; bit-identical result
    (same ascending edge-visit order).  The neighbor masks backing it are
    always present. *)

val step_cost_mask :
  Cost_model.t ->
  Ljqo_catalog.Query.t ->
  outer_card:float ->
  mask:Ljqo_catalog.Bitset.t ->
  int ->
  float * float
(** [step_cost] with the member set as a bitset — the form the bitset DP's
    expansion loop uses.  Bit-identical to the list form. *)

val eval : Cost_model.t -> Ljqo_catalog.Query.t -> int array -> Plan_cost.eval
(** Permutation costing under the product estimator (same result shape as
    {!Plan_cost.eval}). *)

val total : Cost_model.t -> Ljqo_catalog.Query.t -> int array -> float
