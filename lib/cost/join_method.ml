type t = Hash_join | Sort_merge_join | Nested_loop_join

let all = [ Hash_join; Sort_merge_join; Nested_loop_join ]

let name = function
  | Hash_join -> "hash"
  | Sort_merge_join -> "sort-merge"
  | Nested_loop_join -> "nested-loop"

type params = {
  hash : Memory_model.params;
  c_sort : float;
  c_merge : float;
  c_loop_compare : float;
  c_output : float;
}

let default_params =
  {
    hash = Memory_model.default_params;
    c_sort = 0.25;
    c_merge = 1.0;
    c_loop_compare = 0.25;
    c_output = 1.0;
  }

let applicable m (j : Cost_model.join_input) =
  match m with
  | Nested_loop_join -> true
  | Hash_join | Sort_merge_join -> not j.is_cross

let log2 x = if x <= 2.0 then 1.0 else log x /. log 2.0

let cost ?(params = default_params) m (j : Cost_model.join_input) =
  if not (applicable m j) then infinity
  else
    match m with
    | Hash_join ->
      let p = params.hash in
      let chain = j.inner_card /. Float.max 1.0 j.inner_distinct in
      (p.Memory_model.c_build *. j.inner_card)
      +. (j.outer_card *. (p.Memory_model.c_probe +. (p.Memory_model.c_compare *. chain)))
      +. (p.Memory_model.c_output *. j.output_card)
    | Sort_merge_join ->
      let sort n = params.c_sort *. n *. log2 n in
      sort j.outer_card +. sort j.inner_card
      +. (params.c_merge *. (j.outer_card +. j.inner_card))
      +. (params.c_output *. j.output_card)
    | Nested_loop_join ->
      (params.c_loop_compare *. j.outer_card *. j.inner_card)
      +. (params.c_output *. j.output_card)

let cheapest ?(params = default_params) j =
  List.fold_left
    (fun (bm, bc) m ->
      let c = cost ~params m j in
      if c < bc then (m, c) else (bm, bc))
    (Nested_loop_join, cost ~params Nested_loop_join j)
    [ Hash_join; Sort_merge_join ]

module Make_adaptive (P : sig
  val params : params
end) : Cost_model.S = struct
  let name = "adaptive-memory"

  let join_cost j = snd (cheapest ~params:P.params j)

  let scan_cost ~card = P.params.hash.Memory_model.c_build *. card

  let output_cost ~card = P.params.c_output *. card
end

module Adaptive_memory = Make_adaptive (struct
  let params = default_params
end)

let make_adaptive params : Cost_model.t =
  (module Make_adaptive (struct
    let params = params
  end))

let annotate ?(params = default_params) query plan =
  let model = make_adaptive params in
  let e = Plan_cost.eval model query plan in
  let pos = Array.make (Array.length plan) 0 in
  Array.iteri (fun i r -> pos.(r) <- i) plan;
  List.init
    (Array.length plan - 1)
    (fun k ->
      let i = k + 1 in
      let r = plan.(i) in
      let is_cross = not (Plan_cost.joins_before query ~perm:plan ~pos i) in
      let input : Cost_model.join_input =
        {
          outer_card = e.cards.(i - 1);
          inner_card = Ljqo_catalog.Query.cardinality query r;
          inner_distinct = Ljqo_catalog.Query.distinct_values query r;
          output_card = e.cards.(i);
          is_first = i = 1;
          is_cross;
        }
      in
      let m, c = cheapest ~params input in
      (i, m, c))
