(** Costing of outer linear join trees (permutations) under a cost model.

    A permutation [perm] of the relation ids denotes the left-deep plan
    [((perm0 |><| perm1) |><| perm2) ...].  Intermediate sizes follow the
    standard product-of-selectivities estimate with *distinct-value
    clamping*: when the running intermediate result has fewer tuples than a
    join column's distinct count, the column cannot carry more values than
    tuples, so the edge's effective selectivity is rescaled accordingly
    ([edge_selectivity]).  Clamping makes sizes — and costs — depend on join
    *order*, not merely on prefix sets, which is both how real estimators
    behave and what gives the plan space its rugged, order-sensitive
    character.

    Consequently an incremental recosting after a local change to positions
    [>= lo] must recompute all steps from [lo] to the end (earlier steps are
    untouched).

    Functions taking a [pos] array expect the inverse permutation
    ([pos.(perm.(i)) = i]). *)

type eval = {
  cards : float array;
      (** [cards.(i)]: intermediate cardinality after position [i];
          [cards.(0)] is the first relation's cardinality *)
  step_costs : float array;  (** [step_costs.(0) = 0.] *)
  total : float;
  est_steps : int;  (** elementary estimation steps performed (for budgets) *)
}

val edge_selectivity :
  Ljqo_catalog.Query.t -> outer_card:float -> k:int -> r:int -> float -> float
(** [edge_selectivity q ~outer_card ~k ~r s] rescales the catalog selectivity
    [s] of edge [(k, r)] for an intermediate of [outer_card] tuples holding
    [k]; capped at 1.  When a {!calibration} is installed the result is
    additionally multiplied by its per-edge correction factor (before the
    cap). *)

type calibration = { sel_factor : float }
(** A multiplicative per-edge selectivity correction fitted from executed
    plans (least squares of log(actual/estimated) cardinality against join
    depth; see [Ljqo_feedback.Calibration]).  [sel_factor = 1.0] is the
    identity. *)

val set_calibration : calibration option -> unit
(** Install (or clear, with [None]) the global calibration applied by
    {!edge_selectivity} — and hence by every costing path: [eval], the
    incremental prefix/word recosts, and the fused {!Stepper}.  [None] (the
    default) performs no extra float operation, so uncalibrated costs are
    bit-identical to a build without the hook.  Flip only between runs, from
    the main domain. *)

val calibration : unit -> calibration option
(** The currently installed calibration, if any. *)

val selectivity_before :
  Ljqo_catalog.Query.t ->
  perm:int array ->
  pos:int array ->
  outer_card:float ->
  int ->
  float
(** Product of the effective selectivities of edges between [perm.(i)] and
    relations at earlier positions; [1.0] if none (cross product). *)

val joins_before : Ljqo_catalog.Query.t -> perm:int array -> pos:int array -> int -> bool
(** Whether [perm.(i)] is joined to at least one earlier relation.  List-scan
    reference form; the hot paths use {!joins_prefix}. *)

val joins_prefix :
  Ljqo_catalog.Query.t -> prefix:Ljqo_catalog.Bitset.t -> int -> bool
(** [joins_prefix q ~prefix r]: whether [r] is joined to any relation in the
    placed-prefix mask — a few word-ANDs against the precomputed neighbor
    mask, at any graph width. *)

val joins_words : Ljqo_catalog.Query.t -> words:int array -> int -> bool
(** {!joins_prefix} with the prefix as a scratch word array in the
    {!Ljqo_catalog.Bitset.words_needed} layout — the form the wide
    ([n > Bitset.inline_size]) hot loops use so they never box a prefix. *)

val selectivity_prefix :
  Ljqo_catalog.Query.t ->
  prefix:Ljqo_catalog.Bitset.t ->
  outer_card:float ->
  int ->
  float
(** {!selectivity_before} with the prefix as a mask; visits edges in the same
    ascending order, so results are bit-identical to the [pos]-based form. *)

val selectivity_words :
  Ljqo_catalog.Query.t -> words:int array -> outer_card:float -> int -> float
(** {!selectivity_prefix} with the prefix as a scratch word array; same
    ascending visit order, bit-identical results. *)

val clamp_card : float -> float
(** Sanitize an estimated cardinality: NaN becomes 1, and the result is
    clamped into [[1, 1e120]].  Keeps every downstream cost finite. *)

val clamp_cost : float -> float
(** Sanitize a model-produced cost: NaN and [+inf] are pessimized to the
    [1e150] ceiling, negative values floored at 0.  This is the containment
    wall that makes the search methods total even under a faulty
    (e.g. fault-injecting) cost model. *)

val step_cost :
  Cost_model.t ->
  Ljqo_catalog.Query.t ->
  perm:int array ->
  pos:int array ->
  i:int ->
  outer_card:float ->
  float * float
(** [(cost, output_card)] of the join at position [i >= 1]. *)

val step_cost_prefix :
  Cost_model.t ->
  Ljqo_catalog.Query.t ->
  prefix:Ljqo_catalog.Bitset.t ->
  r:int ->
  is_first:bool ->
  outer_card:float ->
  float * float
(** {!step_cost} with the placed prefix as a mask: [r] is the relation being
    joined next, [is_first] whether this is the plan's first join step
    (position 1).  Bit-identical to {!step_cost}; this is the form the
    incremental search state and {!eval} use. *)

val step_cost_words :
  Cost_model.t ->
  Ljqo_catalog.Query.t ->
  words:int array ->
  r:int ->
  is_first:bool ->
  outer_card:float ->
  float * float
(** {!step_cost_prefix} with the prefix as a scratch word array — the form
    the wide incremental recost uses.  Bit-identical float operations. *)

(** Allocation-free stepping for the fused neighbor kernel
    ({!Ljqo_core.Neighborhood}): the placed prefix as two raw bitset words,
    the result through a caller-owned scratch array, the cost-model module
    unpacked once.  [step] is bit-identical to {!step_cost_prefix} on the
    same inputs (same float operations in the same order). *)
module Stepper : sig
  type t

  val make : Cost_model.t -> Ljqo_catalog.Query.t -> t
  (** The neighbor masks (always present) back the cross-product test. *)

  val step :
    t ->
    w0:int ->
    w1:int ->
    r:int ->
    is_first:bool ->
    outer_card:float ->
    into:float array ->
    unit
  (** Cost the join of relation [r] against the prefix [{w0, w1}]:
      [into.(0) <- cost] and [into.(1) <- output_card] ([into] must have at
      least 2 slots).  A cross product is {e not} rejected here — the caller
      tests validity against the neighbor mask first; when it asks anyway,
      the model's [is_cross] pricing applies, exactly as in
      {!step_cost_prefix}. *)

  val step_words :
    t ->
    words:int array ->
    r:int ->
    is_first:bool ->
    outer_card:float ->
    into:float array ->
    unit
  (** {!step} for graphs wider than the two inline bitset words: the prefix
      arrives as a scratch word array ({!Ljqo_catalog.Bitset.words_needed}
      layout).  Bit-identical to {!step_cost_words} on the same inputs. *)
end

val eval : Cost_model.t -> Ljqo_catalog.Query.t -> int array -> eval

val total : Cost_model.t -> Ljqo_catalog.Query.t -> int array -> float

val qerror : est:float -> act:float -> float
(** The estimation-error factor [max (est/act, act/est)] with both sides
    floored at 1 tuple (so [act = 0] stays finite).  Always [>= 1];
    symmetric under swapping [est] and [act]. *)

val reference_final_cardinality : Ljqo_catalog.Query.t -> float
(** The unclamped full-join size (product of all cardinalities and all edge
    selectivities) — an order-independent reference used to compare
    component result sizes; actual plan-dependent finals may be smaller. *)

val lower_bound : Cost_model.t -> Ljqo_catalog.Query.t -> float
(** Admissible lower bound on any valid plan's cost: every base relation is
    scanned at least once. *)
