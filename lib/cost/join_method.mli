(** Multiple join methods — the paper's stated future work ("Our work can be
    extended by incorporating join methods other than the hash join
    method").

    Three classic in-memory methods are priced per join step:

    - {b hash join}: build on the inner, probe with the outer (identical to
      {!Memory_model});
    - {b sort-merge join}: sort both inputs, then a linear merge.  Note the
      paper's observation that sort-merge does *not* have the
      [n1 * g(n2)] ASI cost shape KBZ requires — visible here in the
      [n1 log n1] term;
    - {b nested loops}: compare every pair; the only method applicable to a
      cross product.

    {!Adaptive_memory} is a {!Cost_model.S} that charges each step the
    cheapest applicable method, turning every optimizer in this library into
    a joint join-order + join-method optimizer without changing any search
    code (the method choice per step is a pure function of the step's
    inputs, so it composes with the incremental recosting). *)

type t = Hash_join | Sort_merge_join | Nested_loop_join

val all : t list

val name : t -> string

type params = {
  hash : Memory_model.params;
  c_sort : float;  (** per comparison while sorting, [n log2 n] of them *)
  c_merge : float;  (** per tuple scanned during the merge phase *)
  c_loop_compare : float;  (** per pair compared by nested loops *)
  c_output : float;
}

val default_params : params

val cost : ?params:params -> t -> Cost_model.join_input -> float
(** Cost of executing the step with the given method.  Nested loops accepts
    any input; hash and sort-merge require an equality predicate and return
    [infinity] on a cross product. *)

val applicable : t -> Cost_model.join_input -> bool

val cheapest : ?params:params -> Cost_model.join_input -> t * float
(** The cheapest applicable method for this step. *)

module Adaptive_memory : Cost_model.S

val make_adaptive : params -> Cost_model.t

val annotate :
  ?params:params ->
  Ljqo_catalog.Query.t ->
  int array ->
  (int * t * float) list
(** For each join step of the plan (position, method, cost): the per-step
    method selection the adaptive model implies — what an EXPLAIN would
    print. *)
