(** Cost-model interface.

    A cost model prices one join step of an outer linear join tree: the outer
    operand is the running intermediate result, the inner operand is always a
    base relation (the paper's plan-space restriction).  The paper validates
    its findings under two models — a main-memory model [Swa89a] and a
    disk-based model [Bra84] — and this interface is what both implement, so
    every optimizer component is parametric in the model. *)

type join_input = {
  outer_card : float;  (** cardinality of the outer (intermediate) operand *)
  inner_card : float;  (** cardinality of the inner base relation, [N_j] *)
  inner_distinct : float;  (** distinct join values in the inner, [D_j] *)
  output_card : float;  (** estimated cardinality of the join result *)
  is_first : bool;
      (** true when the outer operand is itself a base relation (the first
          join of the plan), letting disk models charge its first read *)
  is_cross : bool;  (** true when no join predicate applies (cross product) *)
}

module type S = sig
  val name : string

  val join_cost : join_input -> float
  (** Cost of performing this single join.  Must be nonnegative and monotone
      in each cardinality field. *)

  val scan_cost : card:float -> float
  (** Unavoidable cost of touching a base relation of this size at least
      once; used by admissible lower bounds. *)

  val output_cost : card:float -> float
  (** Unavoidable cost of producing a final result of this size; used by
      admissible lower bounds. *)
end

type t = (module S)
