type params = {
  c_build : float;
  c_probe : float;
  c_compare : float;
  c_output : float;
}

let default_params = { c_build = 1.0; c_probe = 1.0; c_compare = 0.5; c_output = 1.0 }

module Make (P : sig
  val params : params
end) : Cost_model.S = struct
  let p = P.params

  let name = "memory"

  let join_cost (j : Cost_model.join_input) =
    if j.is_cross then
      (* Nested loops: no hash table helps when there is no predicate. *)
      (p.c_probe *. j.outer_card *. j.inner_card) +. (p.c_output *. j.output_card)
    else
      let chain = j.inner_card /. Float.max 1.0 j.inner_distinct in
      (p.c_build *. j.inner_card)
      +. (j.outer_card *. (p.c_probe +. (p.c_compare *. chain)))
      +. (p.c_output *. j.output_card)

  let scan_cost ~card = p.c_build *. card

  let output_cost ~card = p.c_output *. card
end

let make params : Cost_model.t =
  (module Make (struct
    let params = params
  end))

include Make (struct
  let params = default_params
end)
