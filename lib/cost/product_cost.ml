open Ljqo_catalog

(* The raw size product is propagated unfloored so that the estimate of a
   set is genuinely order-independent (flooring per step would make the
   running value depend on where the product dips below one tuple, breaking
   the optimal-substructure property DP relies on).  Extreme guards keep the
   product inside the float range; display/costing floors at 1. *)
let raw_floor = 1e-280

let raw_ceiling = 1e120

let guard x = Float.min raw_ceiling (Float.max raw_floor x)

let displayed raw = Float.min raw_ceiling (Float.max 1.0 raw)

let raw_set_cardinality query members =
  let in_set = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace in_set r ()) members;
  let cards =
    List.fold_left (fun acc r -> acc *. Query.cardinality query r) 1.0 members
  in
  let sels =
    Join_graph.fold_edges
      (fun e acc ->
        if Hashtbl.mem in_set e.Join_graph.u && Hashtbl.mem in_set e.Join_graph.v
        then acc *. e.Join_graph.selectivity
        else acc)
      (Query.graph query) 1.0
  in
  guard (cards *. sels)

let set_cardinality query members = displayed (raw_set_cardinality query members)

let raw_extend query ~raw ~members r =
  let sel =
    List.fold_left
      (fun acc (other, s) -> if List.mem other members then acc *. s else acc)
      1.0
      (Join_graph.neighbors (Query.graph query) r)
  in
  guard (raw *. Query.cardinality query r *. sel)

let extend_cardinality query ~card ~members r =
  displayed (raw_extend query ~raw:card ~members r)

(* Mask twins of [raw_extend]/[step_cost]: membership is a bitset test
   instead of [List.mem], and neighbors come from the cached parallel
   arrays.  Same ascending visit order, so the float products match the
   list forms bit-for-bit (the DP equivalence property relies on this). *)

let raw_extend_mask query ~raw ~mask r =
  let graph = Query.graph query in
  let ids = Join_graph.neighbor_ids graph r in
  let sels = Join_graph.neighbor_sels graph r in
  let sel = ref 1.0 in
  for j = 0 to Array.length ids - 1 do
    if Bitset.mem (Array.unsafe_get ids j) mask then
      sel := !sel *. Array.unsafe_get sels j
  done;
  guard (raw *. Query.cardinality query r *. !sel)

let step_cost_mask (model : Cost_model.t) query ~outer_card ~mask r =
  let module M = (val model : Cost_model.S) in
  let raw' = raw_extend_mask query ~raw:outer_card ~mask r in
  let is_cross =
    not (Bitset.intersects (Join_graph.neighbor_mask (Query.graph query) r) mask)
  in
  let input : Cost_model.join_input =
    {
      outer_card = displayed outer_card;
      inner_card = Query.cardinality query r;
      inner_distinct = Query.distinct_values query r;
      output_card = displayed raw';
      is_first = Bitset.is_empty mask;
      is_cross;
    }
  in
  (Plan_cost.clamp_cost (M.join_cost input), raw')

let step_cost (model : Cost_model.t) query ~outer_card ~members r =
  let module M = (val model : Cost_model.S) in
  let raw' = raw_extend query ~raw:outer_card ~members r in
  let is_cross =
    not
      (List.exists
         (fun (other, _) -> List.mem other members)
         (Join_graph.neighbors (Query.graph query) r))
  in
  let input : Cost_model.join_input =
    {
      outer_card = displayed outer_card;
      inner_card = Query.cardinality query r;
      inner_distinct = Query.distinct_values query r;
      output_card = displayed raw';
      is_first = members = [];
      is_cross;
    }
  in
  (Plan_cost.clamp_cost (M.join_cost input), raw')

let eval model query perm =
  let n = Array.length perm in
  if n = 0 then invalid_arg "Product_cost.eval: empty permutation";
  let cards = Array.make n 0.0 in
  let step_costs = Array.make n 0.0 in
  let raw = ref (Query.cardinality query perm.(0)) in
  cards.(0) <- displayed !raw;
  let total = ref 0.0 in
  let members = ref [ perm.(0) ] in
  for i = 1 to n - 1 do
    let cost, raw' = step_cost model query ~outer_card:!raw ~members:!members perm.(i) in
    raw := raw';
    cards.(i) <- displayed raw';
    step_costs.(i) <- cost;
    total := !total +. cost;
    members := perm.(i) :: !members
  done;
  { Plan_cost.cards; step_costs; total = !total; est_steps = n }

let total model query perm = (eval model query perm).Plan_cost.total
