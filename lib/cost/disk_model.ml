type params = {
  page_bytes : int;
  tuple_bytes : int;
  memory_pages : int;
  io_cost : float;
  cpu_per_tuple : float;
}

let default_params =
  {
    page_bytes = 4096;
    tuple_bytes = 128;
    memory_pages = 256;
    io_cost = 1.0;
    cpu_per_tuple = 0.001;
  }

let pages p card =
  let per_page = float_of_int (p.page_bytes / p.tuple_bytes) in
  Float.max 1.0 (Float.round (ceil (Float.max 0.0 card /. per_page)))

module Make (P : sig
  val params : params
end) : Cost_model.S = struct
  let p = P.params

  let name = "disk"

  let join_cost (j : Cost_model.join_input) =
    let inner_pages = pages p j.inner_card in
    let outer_pages = pages p j.outer_card in
    let out_pages = pages p j.output_card in
    let pass_factor = if inner_pages <= float_of_int p.memory_pages then 1.0 else 3.0 in
    let io = (pass_factor *. (inner_pages +. outer_pages)) +. out_pages in
    let cpu =
      if j.is_cross then j.outer_card *. j.inner_card
      else j.outer_card +. j.inner_card +. j.output_card
    in
    (p.io_cost *. io) +. (p.cpu_per_tuple *. cpu)

  let scan_cost ~card = p.io_cost *. pages p card

  let output_cost ~card = p.io_cost *. pages p card
end

let make params : Cost_model.t =
  (module Make (struct
    let params = params
  end))

include Make (struct
  let params = default_params
end)
