#!/bin/sh
# CI entry point: build everything, run the test suites with backtraces on,
# then the chaos (fault-injection) suite.  The dev profile makes warnings
# fatal, so a clean run here is also a clean -w @a-ish build.
set -eux

cd "$(dirname "$0")/.."

dune build @all
OCAMLRUNPARAM=b dune runtest
dune build @chaos

# Micro-bench smoke: one tiny-quota pass must complete and emit the JSON
# (written next to, not over, the committed full-quota results).
smoke_json=results/BENCH_micro.smoke.json
rm -f "$smoke_json"
dune exec bench/main.exe -- micro --micro-quota 0.05 --micro-out "$smoke_json"
test -s "$smoke_json"
rm -f "$smoke_json"

# Perf gate: a fresh micro run must stay within tolerance of the committed
# baseline.  Two runs, each kernel judged on its faster time: OS jitter on
# a loaded single-core machine only ever inflates a timing, so the min of
# two runs filters spikes while a real regression still shows in both.
# The gate's own default band is +-25%; CI widens it to 2x because even
# the best-of-two smoke run right after the test suites stays noisy — the
# gate is here to catch gross regressions (accidental quadratic loops,
# instrumentation left enabled on the hot path), not single-digit drift.
fresh_a=results/BENCH_micro.fresh-a.json
fresh_b=results/BENCH_micro.fresh-b.json
rm -f "$fresh_a" "$fresh_b"
dune build bench tools
sleep 3
dune exec bench/main.exe -- micro --micro-quota 0.5 --micro-out "$fresh_a"
dune exec bench/main.exe -- micro --micro-quota 0.5 --micro-out "$fresh_b"
LJQO_PERF_TOLERANCE="${LJQO_PERF_TOLERANCE:-1.0}" dune exec tools/perf_gate.exe -- \
  --baseline results/BENCH_micro.json --fresh "$fresh_a" --fresh "$fresh_b"
rm -f "$fresh_a" "$fresh_b"

# Wide-graph smoke: a 200-relation query — far past the old 126-id bitset
# cap — must optimize end to end through the portfolio racer.
wide_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- generate --n-joins 200 --seed 11 -o "$wide_tmp/q.qdl"
dune exec bin/ljqo.exe -- optimize "$wide_tmp/q.qdl" --method portfolio \
  --t-factor 1 | tee "$wide_tmp/opt.out"
grep -q 'cost' "$wide_tmp/opt.out"
rm -rf "$wide_tmp"

# Plan-cache smoke: serving a workload twice through the service must turn
# the whole second pass into exact hits at zero optimization ticks.
cache_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- workload -o "$cache_tmp/wl" --per-n 2
dune exec bin/ljqo.exe -- serve-file "$cache_tmp/wl" --passes 2 --t-factor 1 \
  | tee "$cache_tmp/serve.out"
grep -q 'pass 2: 10 exact-hit, 0 warm-start, 0 cold, 0 deduped; 0 ticks' \
  "$cache_tmp/serve.out"
rm -rf "$cache_tmp"

# Portfolio smoke: serving a query with the racing method must work end to
# end under multiple domains — deterministic output is covered by the test
# suite; here we check the flag plumbing and that metrics stay
# validator-clean.
portfolio_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- workload -o "$portfolio_tmp/wl" --per-n 1
LJQO_JOBS=4 dune exec bin/ljqo.exe -- serve "$portfolio_tmp/wl" \
  --method portfolio --portfolio-width 4 --workers 1 --t-factor 1 \
  --metrics "$portfolio_tmp/metrics.json" | tee "$portfolio_tmp/serve.out"
dune exec tools/perf_gate.exe -- --check-json "$portfolio_tmp/metrics.json"
grep -q '"portfolio.rounds"' "$portfolio_tmp/metrics.json"
rm -rf "$portfolio_tmp"

# Trace smoke: an instrumented optimize run must emit well-formed JSONL
# trace events and a well-formed metrics snapshot.
trace_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- generate --n-joins 15 --seed 7 -o "$trace_tmp/q.qdl"
dune exec bin/ljqo.exe -- optimize "$trace_tmp/q.qdl" --method IAI \
  --metrics "$trace_tmp/metrics.json" --trace "$trace_tmp/trace.jsonl"
dune exec tools/perf_gate.exe -- --check-jsonl "$trace_tmp/trace.jsonl"
dune exec tools/perf_gate.exe -- --check-json "$trace_tmp/metrics.json"
rm -rf "$trace_tmp"

# Span smoke: a span-enabled serve-file run must produce a trace whose
# Chrome and flamegraph exports are validator-clean, and a trajectory run
# must render an SVG.
span_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- workload -o "$span_tmp/wl" --per-n 1
dune exec bin/ljqo.exe -- serve-file "$span_tmp/wl" --t-factor 1 \
  --metrics "$span_tmp/metrics.json" --trace "$span_tmp/trace.jsonl"
dune exec tools/perf_gate.exe -- --check-jsonl "$span_tmp/trace.jsonl"
grep -q '"ev":"span"' "$span_tmp/trace.jsonl"
dune exec bin/ljqo.exe -- obs summary "$span_tmp/trace.jsonl"
dune exec bin/ljqo.exe -- obs export-chrome "$span_tmp/trace.jsonl" \
  -o "$span_tmp/trace.chrome.json"
dune exec tools/perf_gate.exe -- --check-json "$span_tmp/trace.chrome.json"
dune exec bin/ljqo.exe -- obs export-flame "$span_tmp/trace.jsonl" \
  -o "$span_tmp/trace.folded"
test -s "$span_tmp/trace.folded"
dune exec bin/ljqo.exe -- generate --n-joins 12 --seed 9 -o "$span_tmp/q.qdl"
dune exec bin/ljqo.exe -- obs trajectory "$span_tmp/q.qdl" --t-factor 2 \
  -o "$span_tmp/traj.svg"
grep -q '<svg' "$span_tmp/traj.svg"
rm -rf "$span_tmp"

# Server smoke: SIGTERM mid-run must trigger the graceful drain — every
# accepted request answered, metrics flushed, exit 0.  The binary runs
# directly (not under dune exec) so the signal reaches the server process
# itself rather than the build wrapper.
server_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- workload -o "$server_tmp/wl" --per-n 2
_build/default/bin/ljqo.exe serve "$server_tmp/wl" --passes 500 \
  --workers 1 --queue-capacity 2 --t-factor 1 --cache-capacity 1 \
  --metrics "$server_tmp/metrics.json" >"$server_tmp/serve.out" 2>&1 &
server_pid=$!
sleep 2
kill -TERM "$server_pid"
wait "$server_pid"
grep -q 'signal received: draining' "$server_tmp/serve.out"
dune exec tools/perf_gate.exe -- --check-json "$server_tmp/metrics.json"
grep -q '"service.shed"' "$server_tmp/metrics.json"
grep -q '"service.drained"' "$server_tmp/metrics.json"

# Open-loop load smoke: a short sweep must report per-rate goodput and
# render the goodput-vs-offered-load chart.
_build/default/bin/ljqo.exe loadgen "$server_tmp/wl" --sweep 20,200 \
  --requests 20 --workers 2 --queue-capacity 4 --t-factor 1 \
  --svg "$server_tmp/goodput.svg" | tee "$server_tmp/loadgen.out"
grep -q 'rate 20/s:' "$server_tmp/loadgen.out"
grep -q 'rate 200/s:' "$server_tmp/loadgen.out"
grep -q '<svg' "$server_tmp/goodput.svg"
rm -rf "$server_tmp"

# Learned-routing smoke: train a tiny model over the benchmark grid, render
# the adaptive-vs-fixed evaluation table, and serve a workload adaptively —
# the learn.* counters must land in a validator-clean metrics snapshot.
learn_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- learn train --ns 10 --per-n 1 --t-factor 0.5 \
  -o "$learn_tmp/model.txt" --dump-samples "$learn_tmp/samples.jsonl" \
  | tee "$learn_tmp/train.out"
grep -q 'wrote' "$learn_tmp/train.out"
test -s "$learn_tmp/model.txt"
test -s "$learn_tmp/samples.jsonl"
dune exec bin/ljqo.exe -- learn eval --learn-model "$learn_tmp/model.txt" \
  --ns 10 --per-n 1 --t-factor 0.5 | tee "$learn_tmp/eval.out"
grep -q 'adaptive' "$learn_tmp/eval.out"
grep -q 'overall' "$learn_tmp/eval.out"
dune exec bin/ljqo.exe -- workload -o "$learn_tmp/wl" --per-n 1
dune exec bin/ljqo.exe -- serve-file "$learn_tmp/wl" --method adaptive \
  --learn-model "$learn_tmp/model.txt" --learn-epoch 4 --t-factor 1 \
  --metrics "$learn_tmp/metrics.json"
dune exec tools/perf_gate.exe -- --check-json "$learn_tmp/metrics.json"
grep -q '"learn.samples_recorded": 5' "$learn_tmp/metrics.json"
grep -q '"learn.model_refreshes": 1' "$learn_tmp/metrics.json"
grep -q '"learn.route' "$learn_tmp/metrics.json"
rm -rf "$learn_tmp"

# Execution-feedback smoke: execute a tiny grid, report per-depth q-error
# with validator-clean SVG/metrics/trace artifacts, fit a calibration and
# load it back into a calibrated report.
fb_tmp=$(mktemp -d)
dune exec bin/ljqo.exe -- feedback report --ns 4 --per-n 1 --t-factor 1 \
  --seed 3 --svg "$fb_tmp/qerror.svg" --metrics "$fb_tmp/metrics.json" \
  --trace "$fb_tmp/trace.jsonl" | tee "$fb_tmp/report.out"
grep -q 'overall: mean q-error' "$fb_tmp/report.out"
grep -q 'depth 1' "$fb_tmp/report.out"
grep -q '<svg' "$fb_tmp/qerror.svg"
dune exec tools/perf_gate.exe -- --check-json "$fb_tmp/metrics.json"
dune exec tools/perf_gate.exe -- --check-jsonl "$fb_tmp/trace.jsonl"
grep -q '"feedback.plans_executed"' "$fb_tmp/metrics.json"
grep -q '"feedback.qerror.d1"' "$fb_tmp/metrics.json"
grep -q '"exec.probe_comparisons"' "$fb_tmp/metrics.json"
dune exec bin/ljqo.exe -- feedback calibrate --ns 4 --per-n 1 --t-factor 1 \
  --seed 3 -o "$fb_tmp/cal.txt" | tee "$fb_tmp/cal.out"
grep -q 'wrote' "$fb_tmp/cal.out"
dune exec bin/ljqo.exe -- feedback report --ns 4 --per-n 1 --t-factor 1 \
  --seed 3 --calibration "$fb_tmp/cal.txt" | tee "$fb_tmp/cal-report.out"
grep -q 'calibration:' "$fb_tmp/cal-report.out"
rm -rf "$fb_tmp"

# Trajectory-dump smoke: the bench harness must leave a loadable
# trajectory table behind --trajectories (fig4 records incumbent
# improvements; its lines are label/points records, so validate the first
# line as plain JSON rather than trace JSONL).
traj_tmp=$(mktemp -d)
dune exec bench/main.exe -- fig4 --per-n 1 --replicates 1 \
  --trajectories "$traj_tmp/td" >/dev/null
test -s "$traj_tmp/td/trajectories.jsonl"
head -1 "$traj_tmp/td/trajectories.jsonl" > "$traj_tmp/one.json"
dune exec tools/perf_gate.exe -- --check-json "$traj_tmp/one.json"
rm -rf "$traj_tmp"
