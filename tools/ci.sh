#!/bin/sh
# CI entry point: build everything, run the test suites with backtraces on,
# then the chaos (fault-injection) suite.  The dev profile makes warnings
# fatal, so a clean run here is also a clean -w @a-ish build.
set -eux

cd "$(dirname "$0")/.."

dune build @all
OCAMLRUNPARAM=b dune runtest
dune build @chaos
