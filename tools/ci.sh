#!/bin/sh
# CI entry point: build everything, run the test suites with backtraces on,
# then the chaos (fault-injection) suite.  The dev profile makes warnings
# fatal, so a clean run here is also a clean -w @a-ish build.
set -eux

cd "$(dirname "$0")/.."

dune build @all
OCAMLRUNPARAM=b dune runtest
dune build @chaos

# Micro-bench smoke: one tiny-quota pass must complete and emit the JSON
# (written next to, not over, the committed full-quota results).
smoke_json=results/BENCH_micro.smoke.json
rm -f "$smoke_json"
dune exec bench/main.exe -- micro --micro-quota 0.05 --micro-out "$smoke_json"
test -s "$smoke_json"
rm -f "$smoke_json"
