(* Performance-regression gate over the micro-benchmark results.

     perf_gate --baseline results/BENCH_micro.json --fresh fresh.json
     perf_gate --check-jsonl trace.jsonl
     perf_gate --check-json metrics.json

   Compare mode reads BENCH_micro-style files and fails (exit 1) when any
   baseline kernel is missing from the fresh run or slower than
   baseline * (1 + tolerance).  --fresh may be repeated: each kernel is
   then judged on its *fastest* time across the fresh runs, which filters
   the one-sided noise of a loaded machine (an OS-jitter spike slows a run,
   nothing speeds one up; a real regression shows in every run).  The
   tolerance defaults to 0.25 -- micro benchmarks on shared CI machines are
   noisy -- and can be overridden with --tolerance or the
   LJQO_PERF_TOLERANCE environment variable.

   The check modes validate observability output: --check-jsonl requires
   every non-blank line to be a JSON object with an "ev" string field (and
   at least one such event in the file); --check-json requires the whole
   file to be one well-formed JSON value.

   JSON parsing and the check policies live in Ljqo_obs.Jsonv, shared with
   the trace writer, the exporters, and the round-trip test suite -- the
   validator here is the same code the emitters are tested against. *)

open Ljqo_obs.Jsonv

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- compare mode ------------------------------------------------------- *)

(* kernel name -> ns_per_run, from a BENCH_micro.json *)
let kernels path =
  let json =
    try parse_exn (read_file path)
    with Bad msg -> raise (Bad (path ^ ": " ^ msg))
  in
  match member "kernels" json with
  | Some (List ks) ->
    List.filter_map
      (fun k ->
        match (member "name" k, member "ns_per_run" k) with
        | Some (Str name), Some (Num ns) -> Some (name, ns)
        | _ -> None)
      ks
  | _ -> raise (Bad (path ^ ": no \"kernels\" array"))

let compare_runs ~baseline ~fresh ~tolerance =
  let base = kernels baseline in
  (* best (minimum) ns per kernel across all fresh runs: noise only ever
     inflates a timing, so the min is the least-perturbed measurement *)
  let fresh_ks =
    List.concat_map kernels fresh
    |> List.fold_left
         (fun acc (name, ns) ->
           match List.assoc_opt name acc with
           | Some best when best <= ns -> acc
           | _ -> (name, ns) :: List.remove_assoc name acc)
         []
  in
  if base = [] then raise (Bad (baseline ^ ": empty kernel list"));
  Printf.printf "perf gate: %s vs %s (tolerance +%.0f%%)\n"
    (String.concat "," fresh) baseline
    (100.0 *. tolerance);
  Printf.printf "%-40s %12s %12s %8s\n" "kernel" "baseline ns" "fresh ns" "ratio";
  let failures = ref 0 in
  List.iter
    (fun (name, base_ns) ->
      match List.assoc_opt name fresh_ks with
      | None ->
        incr failures;
        Printf.printf "%-40s %12.1f %12s %8s  FAIL (missing)\n" name base_ns "-" "-"
      | Some fresh_ns ->
        let ratio = fresh_ns /. base_ns in
        let ok = ratio <= 1.0 +. tolerance in
        if not ok then incr failures;
        Printf.printf "%-40s %12.1f %12.1f %7.2fx%s\n" name base_ns fresh_ns ratio
          (if ok then "" else "  FAIL"))
    base;
  if !failures > 0 then begin
    Printf.printf "perf gate: %d kernel(s) regressed beyond +%.0f%%\n" !failures
      (100.0 *. tolerance);
    exit 1
  end;
  Printf.printf "perf gate: all %d kernels within tolerance\n" (List.length base)

(* --- check modes -------------------------------------------------------- *)

let check_jsonl path =
  match check_jsonl (read_file path) with
  | Ok events -> Printf.printf "%s: valid JSONL (%d events)\n" path events
  | Error (0, msg) ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
  | Error (lineno, msg) ->
    Printf.eprintf "%s:%d: %s\n" path lineno msg;
    exit 1

let check_json path =
  match check_json (read_file path) with
  | Ok () -> Printf.printf "%s: valid JSON\n" path
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1

(* --- CLI ---------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: perf_gate --baseline FILE --fresh FILE [--fresh FILE]... [--tolerance T]\n\
    \       perf_gate --check-jsonl FILE\n\
    \       perf_gate --check-json FILE\n\
     Tolerance is a fraction (0.25 = +25%); LJQO_PERF_TOLERANCE overrides\n\
     the default.";
  exit 2

let () =
  let baseline = ref None and fresh = ref [] in
  let tolerance =
    ref
      (match Sys.getenv_opt "LJQO_PERF_TOLERANCE" with
      | Some s -> (
        match float_of_string_opt s with
        | Some t when t >= 0.0 -> t
        | _ ->
          prerr_endline ("bad LJQO_PERF_TOLERANCE: " ^ s);
          exit 2)
      | None -> 0.25)
  in
  let jsonl = ref None and json = ref None in
  let rec go = function
    | [] -> ()
    | "--baseline" :: v :: rest -> baseline := Some v; go rest
    | "--fresh" :: v :: rest -> fresh := !fresh @ [ v ]; go rest
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t
      | _ ->
        prerr_endline ("--tolerance wants a nonnegative fraction, got: " ^ v);
        usage ());
      go rest
    | "--check-jsonl" :: v :: rest -> jsonl := Some v; go rest
    | "--check-json" :: v :: rest -> json := Some v; go rest
    | arg :: _ ->
      prerr_endline ("unknown argument: " ^ arg);
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  try
    match (!baseline, !fresh, !jsonl, !json) with
    | Some b, (_ :: _ as f), None, None ->
      compare_runs ~baseline:b ~fresh:f ~tolerance:!tolerance
    | None, [], Some path, None -> check_jsonl path
    | None, [], None, Some path -> check_json path
    | _ -> usage ()
  with
  | Bad msg ->
    prerr_endline ("perf_gate: " ^ msg);
    exit 1
  | Sys_error msg ->
    prerr_endline ("perf_gate: " ^ msg);
    exit 1
