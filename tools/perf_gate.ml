(* Performance-regression gate over the micro-benchmark results.

     perf_gate --baseline results/BENCH_micro.json --fresh fresh.json
     perf_gate --check-jsonl trace.jsonl
     perf_gate --check-json metrics.json

   Compare mode reads BENCH_micro-style files and fails (exit 1) when any
   baseline kernel is missing from the fresh run or slower than
   baseline * (1 + tolerance).  --fresh may be repeated: each kernel is
   then judged on its *fastest* time across the fresh runs, which filters
   the one-sided noise of a loaded machine (an OS-jitter spike slows a run,
   nothing speeds one up; a real regression shows in every run).  The
   tolerance defaults to 0.25 — micro benchmarks on shared CI machines are
   noisy — and can be overridden with --tolerance or the
   LJQO_PERF_TOLERANCE environment variable.

   The check modes validate observability output: --check-jsonl requires
   every non-blank line to be a JSON object with an "ev" string field (and
   at least one such event in the file); --check-json requires the whole
   file to be one well-formed JSON value.

   The JSON reader below is deliberately minimal (the toolchain has no JSON
   library): full parser for objects/arrays/strings/numbers/literals, no
   writer, no unicode escapes beyond pass-through. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

module Parse = struct
  type state = { s : string; mutable pos : int }

  let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let fail st msg = raise (Bad (Printf.sprintf "offset %d: %s" st.pos msg))

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c' = c -> advance st
    | _ -> fail st (Printf.sprintf "expected %C" c)

  let literal st word value =
    String.iter (fun c -> expect st c) word;
    value

  let string_body st =
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> fail st "unterminated string"
      | Some '"' -> advance st
      | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some (('"' | '\\' | '/') as c) -> advance st; Buffer.add_char buf c; go ()
        | Some 'u' ->
          (* keep the escape verbatim; validation only needs well-formedness *)
          advance st;
          Buffer.add_string buf "\\u";
          for _ = 1 to 4 do
            match peek st with
            | Some c -> advance st; Buffer.add_char buf c
            | None -> fail st "truncated \\u escape"
          done;
          go ()
        | _ -> fail st "bad escape")
      | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf

  let number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let rec go () =
      match peek st with
      | Some c when is_num_char c -> advance st; go ()
      | _ -> ()
    in
    go ();
    let tok = String.sub st.s start (st.pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail st ("bad number " ^ tok)

  let rec value st =
    skip_ws st;
    match peek st with
    | None -> fail st "unexpected end of input"
    | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (advance st; Obj [])
      else
        let rec members acc =
          skip_ws st;
          expect st '"';
          let key = string_body st in
          skip_ws st;
          expect st ':';
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; members ((key, v) :: acc)
          | Some '}' -> advance st; Obj (List.rev ((key, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (advance st; List [])
      else
        let rec elements acc =
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; elements (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elements []
    | Some '"' -> advance st; Str (string_body st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> number st

  let full s =
    let st = { s; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- compare mode ------------------------------------------------------- *)

(* kernel name -> ns_per_run, from a BENCH_micro.json *)
let kernels path =
  let json =
    try Parse.full (read_file path)
    with Bad msg -> raise (Bad (path ^ ": " ^ msg))
  in
  match member "kernels" json with
  | Some (List ks) ->
    List.filter_map
      (fun k ->
        match (member "name" k, member "ns_per_run" k) with
        | Some (Str name), Some (Num ns) -> Some (name, ns)
        | _ -> None)
      ks
  | _ -> raise (Bad (path ^ ": no \"kernels\" array"))

let compare_runs ~baseline ~fresh ~tolerance =
  let base = kernels baseline in
  (* best (minimum) ns per kernel across all fresh runs: noise only ever
     inflates a timing, so the min is the least-perturbed measurement *)
  let fresh_ks =
    List.concat_map kernels fresh
    |> List.fold_left
         (fun acc (name, ns) ->
           match List.assoc_opt name acc with
           | Some best when best <= ns -> acc
           | _ -> (name, ns) :: List.remove_assoc name acc)
         []
  in
  if base = [] then raise (Bad (baseline ^ ": empty kernel list"));
  Printf.printf "perf gate: %s vs %s (tolerance +%.0f%%)\n"
    (String.concat "," fresh) baseline
    (100.0 *. tolerance);
  Printf.printf "%-40s %12s %12s %8s\n" "kernel" "baseline ns" "fresh ns" "ratio";
  let failures = ref 0 in
  List.iter
    (fun (name, base_ns) ->
      match List.assoc_opt name fresh_ks with
      | None ->
        incr failures;
        Printf.printf "%-40s %12.1f %12s %8s  FAIL (missing)\n" name base_ns "-" "-"
      | Some fresh_ns ->
        let ratio = fresh_ns /. base_ns in
        let ok = ratio <= 1.0 +. tolerance in
        if not ok then incr failures;
        Printf.printf "%-40s %12.1f %12.1f %7.2fx%s\n" name base_ns fresh_ns ratio
          (if ok then "" else "  FAIL"))
    base;
  if !failures > 0 then begin
    Printf.printf "perf gate: %d kernel(s) regressed beyond +%.0f%%\n" !failures
      (100.0 *. tolerance);
    exit 1
  end;
  Printf.printf "perf gate: all %d kernels within tolerance\n" (List.length base)

(* --- check modes -------------------------------------------------------- *)

let check_jsonl path =
  let ic = open_in path in
  let events = ref 0 and lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          incr lineno;
          if String.trim line <> "" then begin
            (match Parse.full line with
            | Obj _ as obj -> (
              match member "ev" obj with
              | Some (Str _) -> incr events
              | _ -> raise (Bad "object lacks an \"ev\" string field"))
            | _ -> raise (Bad "line is not a JSON object")
            | exception Bad msg -> raise (Bad msg))
          end
        done
      with
      | End_of_file -> ()
      | Bad msg ->
        Printf.eprintf "%s:%d: %s\n" path !lineno msg;
        exit 1);
  if !events = 0 then begin
    Printf.eprintf "%s: no trace events\n" path;
    exit 1
  end;
  Printf.printf "%s: valid JSONL (%d events)\n" path !events

let check_json path =
  (try ignore (Parse.full (read_file path))
   with Bad msg ->
     Printf.eprintf "%s: %s\n" path msg;
     exit 1);
  Printf.printf "%s: valid JSON\n" path

(* --- CLI ---------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: perf_gate --baseline FILE --fresh FILE [--fresh FILE]... [--tolerance T]\n\
    \       perf_gate --check-jsonl FILE\n\
    \       perf_gate --check-json FILE\n\
     Tolerance is a fraction (0.25 = +25%); LJQO_PERF_TOLERANCE overrides\n\
     the default.";
  exit 2

let () =
  let baseline = ref None and fresh = ref [] in
  let tolerance =
    ref
      (match Sys.getenv_opt "LJQO_PERF_TOLERANCE" with
      | Some s -> (
        match float_of_string_opt s with
        | Some t when t >= 0.0 -> t
        | _ ->
          prerr_endline ("bad LJQO_PERF_TOLERANCE: " ^ s);
          exit 2)
      | None -> 0.25)
  in
  let jsonl = ref None and json = ref None in
  let rec go = function
    | [] -> ()
    | "--baseline" :: v :: rest -> baseline := Some v; go rest
    | "--fresh" :: v :: rest -> fresh := !fresh @ [ v ]; go rest
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t
      | _ ->
        prerr_endline ("--tolerance wants a nonnegative fraction, got: " ^ v);
        usage ());
      go rest
    | "--check-jsonl" :: v :: rest -> jsonl := Some v; go rest
    | "--check-json" :: v :: rest -> json := Some v; go rest
    | arg :: _ ->
      prerr_endline ("unknown argument: " ^ arg);
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  try
    match (!baseline, !fresh, !jsonl, !json) with
    | Some b, (_ :: _ as f), None, None ->
      compare_runs ~baseline:b ~fresh:f ~tolerance:!tolerance
    | None, [], Some path, None -> check_jsonl path
    | None, [], None, Some path -> check_json path
    | _ -> usage ()
  with
  | Bad msg ->
    prerr_endline ("perf_gate: " ^ msg);
    exit 1
  | Sys_error msg ->
    prerr_endline ("perf_gate: " ^ msg);
    exit 1
