-- find large-quantity line items of big parts for adult customers
SELECT *
FROM customer c, orders o, lineitem l, part p
WHERE c.custkey = o.custkey
  AND o.orderkey = l.orderkey
  AND l.partkey = p.partkey
  AND c.age >= 30
  AND p.size > 40
  AND l.qty >= 25;
