(* Anytime behaviour: the paper compares methods by the quality they reach
   within a time limit, and an optimizer in production wants exactly that
   curve — "how good is the incumbent if I stop now?".

   This example runs three methods on one hard query with checkpoints at a
   ladder of budgets and renders their quality-vs-time curves.

   Run with:  dune exec examples/anytime_profile.exe *)

open Ljqo_core
module Qgen = Ljqo_querygen.Benchmark

let () =
  let rng = Ljqo_stats.Rng.create 123 in
  let query = Qgen.generate_query Qgen.default ~n_joins:45 ~rng in
  let n_joins = Ljqo_catalog.Query.n_relations query - 1 in
  let model = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in

  let tfactors = [ 0.3; 0.6; 1.2; 2.4; 4.8; 9.0 ] in
  let checkpoints =
    List.map (fun t -> Budget.ticks_for_limit ~t_factor:t ~n_joins ()) tfactors
  in
  let ticks = Budget.ticks_for_limit ~t_factor:9.0 ~n_joins () in

  let methods = Methods.[ IAI; AGI; II ] in
  let curves =
    List.map
      (fun m ->
        let r = Optimizer.optimize ~method_:m ~model ~ticks ~checkpoints ~seed:99 query in
        (m, r))
      methods
  in
  let best =
    List.fold_left
      (fun acc (_, (r : Optimizer.result)) -> Float.min acc r.cost)
      infinity curves
  in

  Format.printf "Query with %d joins; incumbent scaled cost over time:@.@." n_joins;
  Format.printf "%8s" "t/N^2";
  List.iter (fun (m, _) -> Format.printf "%10s" (Methods.name m)) curves;
  Format.printf "@.";
  List.iteri
    (fun ti t ->
      Format.printf "%8.2g" t;
      List.iter
        (fun (_, (r : Optimizer.result)) ->
          let _, c = List.nth r.checkpoints ti in
          Format.printf "%10.2f" (c /. best))
        curves;
      Format.printf "@.")
    tfactors;

  let series =
    List.map
      (fun (m, (r : Optimizer.result)) ->
        {
          Ljqo_report.Chart.name = Methods.name m;
          points =
            List.map2 (fun t (_, c) -> (t, Float.min 10.0 (c /. best))) tfactors
              r.checkpoints;
        })
      curves
  in
  Format.printf "@.%s@."
    (Ljqo_report.Chart.render ~title:"incumbent quality vs time budget"
       ~x_label:"time limit (multiples of N^2)" ~y_label:"scaled cost" series)
