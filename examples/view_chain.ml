(* View-expansion / logic-programming workload: deeply nested views (or a
   linear recursive rule unrolled) expand into a long *chain* of joins —
   [KBZ86]'s motivating "hundreds of joins" scenario and the paper's
   "graph-chain" benchmark variation.

   Builds a 60-join chain, shows that the constructive heuristics shine on
   trees (KBZ's algorithm R is exact on chains for its ASI surrogate), and
   that II still polishes the result.

   Run with:  dune exec examples/view_chain.exe *)

open Ljqo_core
open Ljqo_catalog

let build_chain ~length ~rng =
  (* High distinct fractions keep per-join growth near 1, the regime where a
     long chain stays executable and ordering decides by which constant. *)
  let relations =
    Array.init length (fun i ->
        let card = 20 + Ljqo_stats.Rng.int rng 500 in
        Relation.make ~id:i
          ~name:(Printf.sprintf "v%02d" i)
          ~base_cardinality:card
          ~selections:(if i mod 3 = 0 then [ 0.34 ] else [])
          ~distinct_fraction:(0.7 +. Ljqo_stats.Rng.float rng 0.3)
          ())
  in
  let edges =
    List.init (length - 1) (fun i ->
        let sel =
          1.0
          /. Float.max
               (Relation.distinct_values relations.(i))
               (Relation.distinct_values relations.(i + 1))
        in
        { Join_graph.u = i; v = i + 1; selectivity = sel })
  in
  Query.make ~relations ~graph:(Join_graph.make ~n:length edges)

let () =
  let rng = Ljqo_stats.Rng.create 77 in
  let query = build_chain ~length:41 ~rng in
  let n_joins = Query.n_relations query - 1 in
  Format.printf "Chain of %d views (%d joins).@." (n_joins + 1) n_joins;

  let model = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in

  (* Pure heuristics first: one augmentation state and one KBZ sweep. *)
  let aug =
    Augmentation.generate query Augmentation.default_criterion
      ~start:(List.hd (Augmentation.starts query))
  in
  let tree = Kbz.spanning_tree query Kbz.default_weighting in
  let kbz_best =
    List.fold_left
      (fun acc root ->
        let p = Kbz.optimal_for_root query ~tree ~root in
        Float.min acc (Ljqo_cost.Plan_cost.total model query p))
      infinity (Augmentation.starts query)
  in
  Format.printf "augmentation state cost: %.6g@."
    (Ljqo_cost.Plan_cost.total model query aug);
  Format.printf "KBZ best-of-roots cost:  %.6g@." kbz_best;

  (* The paper's recommended method, at increasing time limits. *)
  List.iter
    (fun t_factor ->
      let ticks = Budget.ticks_for_limit ~t_factor ~n_joins () in
      let r = Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:3 query in
      Format.printf "IAI at %4.2g N^2: cost %.6g (ticks used %d)@." t_factor r.cost
        r.ticks_used)
    [ 0.3; 1.5; 9.0 ];

  (* Chains are where plans stay executable: run the best plan end to end. *)
  let ticks = Budget.ticks_for_limit ~t_factor:9.0 ~n_joins () in
  let r = Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:3 query in
  let data =
    Ljqo_exec.Relation_data.generate_all query ~rng:(Ljqo_stats.Rng.create 9)
  in
  (try
     let exec = Ljqo_exec.Executor.run ~max_rows:2_000_000 query ~data r.plan in
     Format.printf "executed optimized plan: %d result rows@."
       (Array.length exec.rows)
   with Ljqo_exec.Executor.Result_too_large n ->
     Format.printf "executed optimized plan: aborted at %d rows@." n)
