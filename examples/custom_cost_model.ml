(* Bringing your own cost model: every optimizer in the library is
   parametric in Cost_model.S, so a user can describe their own execution
   environment.  Here: a network-attached-storage model where every page
   touch pays a high fixed latency, making small intermediate results far
   more valuable than under the local-disk model.

   Run with:  dune exec examples/custom_cost_model.exe *)

open Ljqo_core
module Qgen = Ljqo_querygen.Benchmark

(* Pages cost 40x a local-disk page (network round trips), but CPU is
   modern and cheap. *)
module Nas_model : Ljqo_cost.Cost_model.S = struct
  let name = "network-attached-storage"

  let page_tuples = 64.0

  let pages card = Float.max 1.0 (ceil (card /. page_tuples))

  let latency = 40.0

  let join_cost (j : Ljqo_cost.Cost_model.join_input) =
    let io = pages j.inner_card +. pages j.outer_card +. pages j.output_card in
    let cpu =
      if j.is_cross then 1e-4 *. j.outer_card *. j.inner_card
      else 1e-4 *. (j.outer_card +. j.inner_card +. j.output_card)
    in
    (latency *. io) +. cpu

  let scan_cost ~card = latency *. pages card

  let output_cost ~card = latency *. pages card
end

let () =
  let rng = Ljqo_stats.Rng.create 31 in
  let query = Qgen.generate_query Qgen.default ~n_joins:25 ~rng in
  let n_joins = Ljqo_catalog.Query.n_relations query - 1 in
  let ticks = Budget.ticks_for_limit ~t_factor:9.0 ~n_joins () in

  let optimize model =
    Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:8 query
  in
  let nas = (module Nas_model : Ljqo_cost.Cost_model.S) in
  let mem = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in

  let r_nas = optimize nas in
  let r_mem = optimize mem in

  Format.printf "Optimized the same 25-join query under two cost models.@.@.";
  Format.printf "NAS model:    cost %.4g, plan %s@." r_nas.cost
    (Plan.to_string r_nas.plan);
  Format.printf "memory model: cost %.4g, plan %s@." r_mem.cost
    (Plan.to_string r_mem.plan);

  (* Cross-evaluate: how good is each plan under the other model? *)
  let cross_nas = Ljqo_cost.Plan_cost.total nas query r_mem.plan in
  let cross_mem = Ljqo_cost.Plan_cost.total mem query r_nas.plan in
  Format.printf "@.memory-optimal plan under NAS: %.4g (%.2fx the NAS optimum)@."
    cross_nas (cross_nas /. r_nas.cost);
  Format.printf "NAS-optimal plan under memory: %.4g (%.2fx the memory optimum)@."
    cross_mem (cross_mem /. r_mem.cost);
  Format.printf
    "@.(The paper's Figure 7 finding — method ordering is cost-model\n\
    \ independent — does not mean the *plans* coincide.)@."
