(* "Push selections down" executed for real: synthesize relations at base
   cardinality, run the selection predicates tuple by tuple, compare the
   observed selectivities with the catalog model, then join the filtered
   tables with the optimized plan.

   Run with:  dune exec examples/selection_pipeline.exe *)

open Ljqo_core
open Ljqo_catalog

let () =
  let text =
    {|
    relation store    cardinality 200   distinct 0.5;
    relation product  cardinality 5000  distinct 0.2  select 0.34;
    relation sale     cardinality 80000 distinct 0.05 select 0.2 select 0.5;
    relation customer cardinality 12000 distinct 0.1  select 0.34;
    join store sale;
    join product sale;
    join sale customer;
    |}
  in
  let query = Ljqo_qdl.Parser.parse text in
  let rng = Ljqo_stats.Rng.create 17 in

  Format.printf "Executing selections (predicate: attr < selectivity):@.";
  let bases =
    List.init (Query.n_relations query) (fun rel ->
        Ljqo_exec.Pipeline.generate_base query ~rel ~rng:(Ljqo_stats.Rng.split rng))
  in
  List.iter
    (fun (t : Ljqo_exec.Pipeline.base_table) ->
      let r = Query.relation query t.relation in
      let modeled =
        List.fold_left ( *. ) 1.0 r.Relation.selection_selectivities
      in
      Format.printf "  %-9s %6d base rows, selectivity modeled %.3f, observed %.3f@."
        r.Relation.name t.base_rows modeled
        (Ljqo_exec.Pipeline.selectivity_observed query t))
    bases;

  let data =
    Array.of_list (List.map (Ljqo_exec.Pipeline.select query) bases)
  in

  let model = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in
  let ticks =
    Budget.ticks_for_limit ~t_factor:9.0 ~n_joins:(Query.n_relations query - 1) ()
  in
  let r = Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:4 query in
  Format.printf "@.Optimized plan:@.%s@."
    (Plan_render.render_plan ~model query r.plan);

  let result = Ljqo_exec.Executor.run query ~data r.plan in
  let est = (Ljqo_cost.Plan_cost.eval model query r.plan).cards in
  Format.printf "step sizes (estimated vs executed):@.";
  List.iteri
    (fun i actual -> Format.printf "  step %d: %10.4g vs %8d@." i est.(i) actual)
    (Ljqo_exec.Executor.cardinalities result);
  Format.printf "final join result: %d rows@." (Array.length result.rows)
