(* Star-schema workload: one fact table joined to many dimensions — the
   shape object-oriented and decision-support systems feed an optimizer
   (the paper's "graph-star" benchmark variation biases toward it).

   Builds a 25-dimension star programmatically, then compares the paper's
   top methods at small and large time budgets.

   Run with:  dune exec examples/star_schema.exe *)

open Ljqo_core
open Ljqo_catalog

let build_star ~dimensions ~rng =
  let fact =
    Relation.make ~id:0 ~name:"fact" ~base_cardinality:1_000_000
      ~selections:[ 0.1 ] ~distinct_fraction:0.02 ()
  in
  let dims =
    List.init dimensions (fun k ->
        let card = 10 * (1 lsl Ljqo_stats.Rng.int rng 10) in
        Relation.make ~id:(k + 1)
          ~name:(Printf.sprintf "dim%02d" (k + 1))
          ~base_cardinality:card
          ~selections:(if Ljqo_stats.Rng.bool rng then [ 0.34 ] else [])
          ~distinct_fraction:0.5 ())
  in
  let relations = Array.of_list (fact :: dims) in
  let edges =
    List.init dimensions (fun k ->
        let v = k + 1 in
        let sel =
          1.0
          /. Float.max
               (Relation.distinct_values relations.(0))
               (Relation.distinct_values relations.(v))
        in
        { Join_graph.u = 0; v; selectivity = sel })
  in
  Query.make ~relations ~graph:(Join_graph.make ~n:(dimensions + 1) edges)

let () =
  let rng = Ljqo_stats.Rng.create 2024 in
  let query = build_star ~dimensions:25 ~rng in
  let n_joins = Query.n_relations query - 1 in
  Format.printf "Star join: %d dimensions around one fact table (%d joins).@."
    25 n_joins;

  let model = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in
  let methods = Methods.[ AGI; IAI; II; KBI; SA ] in
  List.iter
    (fun t_factor ->
      Format.printf "@.Time limit %.2g N^2:@." t_factor;
      let results =
        List.map
          (fun m ->
            let ticks = Budget.ticks_for_limit ~t_factor ~n_joins () in
            let r = Optimizer.optimize ~method_:m ~model ~ticks ~seed:5 query in
            (m, r.cost))
          methods
      in
      let best = List.fold_left (fun acc (_, c) -> Float.min acc c) infinity results in
      List.iter
        (fun (m, c) ->
          Format.printf "  %-4s cost %12.6g  (%.2fx best)@." (Methods.name m) c
            (c /. best))
        results)
    [ 0.5; 9.0 ];

  (* The star's best plans start at the (filtered) fact table and absorb
     dimensions most-selective first; show IAI's choice. *)
  let ticks = Budget.ticks_for_limit ~t_factor:9.0 ~n_joins () in
  let r = Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:5 query in
  let name i = (Query.relation query i).Relation.name in
  Format.printf "@.IAI plan: %s@."
    (String.concat " " (List.map name (Array.to_list r.plan)))
