(* The SQL front end: statistics catalog + SQL text -> optimizer query,
   with selectivities derived from distinct counts, ranges and histograms
   (System R's magic 1/3 as the fallback — the 0.34 of the paper's
   selectivity list).

   Run with:  dune exec examples/sql_frontend.exe *)

open Ljqo_core
open Ljqo_sql

let catalog_text =
  {|
  table customer rows 15000;
  table orders   rows 150000;
  table lineitem rows 600000;
  table part     rows 20000;
  column customer.custkey distinct 15000;
  column customer.age     distinct 70 range 18 95;
  column orders.custkey   distinct 10000;
  column orders.orderkey  distinct 150000;
  column lineitem.orderkey distinct 150000;
  column lineitem.partkey  distinct 20000;
  column lineitem.qty      distinct 50 range 1 51;
  column part.partkey      distinct 20000;
  column part.size         distinct 50 range 1 51;
  histogram part.size 1 51 counts 400 3600 8000 6000 2000;
  |}

let sql_text =
  {|
  -- large-quantity line items of big parts, bought by adult customers
  SELECT *
  FROM customer c, orders o, lineitem l, part p
  WHERE c.custkey = o.custkey
    AND o.orderkey = l.orderkey
    AND l.partkey = p.partkey
    AND c.age >= 30
    AND p.size > 40
    AND l.qty >= 25;
  |}

let () =
  let catalog = Stats_catalog.parse catalog_text in
  let ast = Sql_parser.parse sql_text in
  let t = Translate.translate catalog ast in
  let query = t.Translate.query in

  Format.printf "Derived selectivities:@.";
  List.iter
    (fun (binder, text, s) ->
      Format.printf "  %-3s %-16s -> %.4f@." binder text s)
    t.Translate.selection_details;

  let model = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in
  let ticks =
    Budget.ticks_for_limit ~t_factor:9.0
      ~n_joins:(Ljqo_catalog.Query.n_relations query - 1)
      ()
  in
  let r = Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:2 query in
  Format.printf "@.Optimized join order:@.%s@."
    (Plan_render.render_plan ~model query r.plan);
  Format.printf "estimated cost %.6g (lower bound %.6g)@." r.cost r.lower_bound;

  (* join methods the adaptive model would pick per step *)
  Format.printf "@.Adaptive join-method choices:@.";
  List.iter
    (fun (i, m, c) ->
      Format.printf "  step %d: %-12s (cost %.4g)@." i
        (Ljqo_cost.Join_method.name m)
        c)
    (Ljqo_cost.Join_method.annotate query r.plan)
