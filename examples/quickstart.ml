(* Quickstart: declare a query, optimize it, inspect the plan.

   Run with:  dune exec examples/quickstart.exe *)

open Ljqo_core

let () =
  (* A query can be written in the textual query description language... *)
  let text =
    {|
    # A six-way join: customers and their orders, items, suppliers.
    relation customer cardinality 10000 distinct 0.1;
    relation orders   cardinality 150000 distinct 0.07 select 0.34;
    relation lineitem cardinality 600000 distinct 0.05;
    relation part     cardinality 20000 distinct 0.2;
    relation supplier cardinality 1000 distinct 0.5;
    relation nation   cardinality 25 distinct 1.0;
    join customer orders;
    join orders lineitem;
    join lineitem part;
    join lineitem supplier;
    join supplier nation;
    |}
  in
  let query = Ljqo_qdl.Parser.parse text in
  Format.printf "Parsed %d relations, %d join predicates.@."
    (Ljqo_catalog.Query.n_relations query)
    (Ljqo_catalog.Query.n_joins query);

  (* ... and optimized with any of the paper's nine methods under a
     time budget proportional to N^2 (here the paper's largest, 9 N^2). *)
  let model = (module Ljqo_cost.Memory_model : Ljqo_cost.Cost_model.S) in
  let ticks =
    Budget.ticks_for_limit ~t_factor:9.0
      ~n_joins:(Ljqo_catalog.Query.n_relations query - 1)
      ()
  in
  let result = Optimizer.optimize ~method_:Methods.IAI ~model ~ticks ~seed:7 query in

  let name i =
    (Ljqo_catalog.Query.relation query i).Ljqo_catalog.Relation.name
  in
  Format.printf "Best plan found by IAI: %s@."
    (String.concat " |><| " (List.map name (Array.to_list result.plan)));
  Format.printf "Estimated cost %.4g (admissible lower bound %.4g).@."
    result.cost result.lower_bound;

  (* Per-step estimates show how the optimizer keeps intermediates small. *)
  let e = Ljqo_cost.Plan_cost.eval model query result.plan in
  Array.iteri
    (fun i r ->
      Format.printf "  step %d: + %-9s -> %10.4g tuples@." i (name r) e.cards.(i))
    result.plan;

  (* Execute the plan for real on synthetic data matching the statistics. *)
  let rng = Ljqo_stats.Rng.create 11 in
  let data = Ljqo_exec.Relation_data.generate_all query ~rng in
  let exec = Ljqo_exec.Executor.run query ~data result.plan in
  Format.printf "Executed: %d result rows (per-step actual sizes: %s).@."
    (Array.length exec.rows)
    (String.concat ", "
       (List.map string_of_int (Ljqo_exec.Executor.cardinalities exec)))
